#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace proteus::serve {

namespace {

/// Nesting ceiling for parsed documents: far beyond any protocol message,
/// small enough that a crafted request cannot overflow the parser stack.
constexpr int kMaxJsonDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    std::optional<Json> v = value(0);
    skip_ws();
    if (v.has_value() && pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      v.reset();
    }
    if (!v.has_value() && error != nullptr) {
      *error = error_.empty() ? "malformed JSON" : error_;
    }
    return v;
  }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    fail("unrecognized literal");
    return false;
  }

  std::optional<Json> value(int depth) {
    if (depth > kMaxJsonDepth) {
      fail("JSON nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case 'n':
        return literal("null") ? std::optional<Json>(Json(nullptr))
                               : std::nullopt;
      case 't':
        return literal("true") ? std::optional<Json>(Json(true))
                               : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Json>(Json(false))
                                : std::nullopt;
      case '"':
        return string();
      case '[':
        return array(depth);
      case '{':
        return object(depth);
      default:
        return number();
    }
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("malformed number");
      return std::nullopt;
    }
    // JSON forbids leading zeros ("01"), which octal-minded clients send
    // by accident; silently reading them as decimal would mask the bug.
    const std::string_view mag = tok[0] == '-' ? tok.substr(1) : tok;
    if (mag.size() > 1 && mag[0] == '0' && mag[1] != '.' && mag[1] != 'e' &&
        mag[1] != 'E') {
      fail("malformed number (leading zero)");
      return std::nullopt;
    }
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(i);
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                         d);
    if (ec != std::errc() || p != tok.data() + tok.size() ||
        !std::isfinite(d)) {
      fail("malformed number");
      return std::nullopt;
    }
    return Json(d);
  }

  std::optional<Json> string() {
    std::optional<std::string> s = raw_string();
    if (!s.has_value()) return std::nullopt;
    return Json(std::move(*s));
  }

  std::optional<std::string> raw_string() {
    if (!eat('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("malformed \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs collapse to
          // U+FFFD; the protocol carries program text, not emoji).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            out += "\xEF\xBF\xBD";
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unrecognized escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> array(int depth) {
    (void)eat('[');
    Json::Array out;
    skip_ws();
    if (eat(']')) return Json(std::move(out));
    while (true) {
      std::optional<Json> v = value(depth + 1);
      if (!v.has_value()) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return Json(std::move(out));
      if (!eat(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> object(int depth) {
    (void)eat('{');
    Json::Object out;
    skip_ws();
    if (eat('}')) return Json(std::move(out));
    while (true) {
      skip_ws();
      std::optional<std::string> key = raw_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!eat(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Json> v = value(depth + 1);
      if (!v.has_value()) return std::nullopt;
      out[std::move(*key)] = std::move(*v);
      skip_ws();
      if (eat('}')) return Json(std::move(out));
      if (!eat(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& v, std::string& out);

void dump_array(const Json::Array& a, std::string& out) {
  out.push_back('[');
  bool first = true;
  for (const Json& v : a) {
    if (!first) out.push_back(',');
    first = false;
    dump_value(v, out);
  }
  out.push_back(']');
}

void dump_object(const Json::Object& o, std::string& out) {
  out.push_back('{');
  bool first = true;
  for (const auto& [key, v] : o) {
    if (!first) out.push_back(',');
    first = false;
    dump_string(key, out);
    out.push_back(':');
    dump_value(v, out);
  }
  out.push_back('}');
}

void dump_value(const Json& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_number()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
    out += buf;
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    dump_array(v.as_array(), out);
  } else {
    dump_object(v.as_object(), out);
  }
}

}  // namespace

const Json& Json::get(std::string_view key) const {
  static const Json kNull;
  const Object* o = std::get_if<Object>(&node_);
  if (o == nullptr) return kNull;
  auto it = o->find(std::string(key));
  return it == o->end() ? kNull : it->second;
}

bool Json::has(std::string_view key) const {
  const Object* o = std::get_if<Object>(&node_);
  return o != nullptr && o->find(std::string(key)) != o->end();
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<Json> parse_json(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace proteus::serve
