#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/proteus.hpp"
#include "obs/log.hpp"
#include "rt/fault.hpp"
#include "rt/trap.hpp"
#include "vm/module_io.hpp"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace proteus::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::uint64_t elapsed_ns(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

Json error_value(const char* kind, std::string code, std::string message) {
  Json::Object e;
  e["kind"] = kind;
  if (!code.empty()) e["code"] = std::move(code);
  e["message"] = std::move(message);
  return Json(std::move(e));
}

/// Wraps an error object into a full reply.
Json error_reply(const Json& request, Json error) {
  Json::Object reply;
  if (request.has("id")) reply["id"] = request.get("id");
  reply["ok"] = false;
  reply["error"] = std::move(error);
  return Json(std::move(reply));
}

/// The request's effective budget: the server ceiling, tightened (never
/// widened) by the request's own "budget" object — a client cannot
/// out-budget the daemon it talks to. A budget that is not an object, or
/// that carries an unknown knob, sets *error instead of being silently
/// ignored: a typo ("max_depth") must not grant an unlimited run.
rt::ExecBudget effective_budget(const Json& req,
                                const rt::ExecBudget& ceiling,
                                std::string* error) {
  auto tighten = [](std::uint64_t requested, std::uint64_t max) {
    if (max == 0) return requested;
    if (requested == 0 || requested > max) return max;
    return requested;
  };
  const Json& b = req.get("budget");
  if (!b.is_null()) {
    if (!b.is_object()) {
      *error = "\"budget\" must be an object";
      return ceiling;
    }
    for (const auto& [knob, value] : b.as_object()) {
      if (knob != "bytes" && knob != "steps" && knob != "depth" &&
          knob != "deadline_ms") {
        *error = "unknown budget knob \"" + knob +
                 "\" (expected bytes, steps, depth, deadline_ms)";
        return ceiling;
      }
      if (!value.is_number()) {
        *error = "budget knob \"" + knob + "\" must be a number";
        return ceiling;
      }
    }
  }
  rt::ExecBudget out;
  out.max_resident_bytes = tighten(
      static_cast<std::uint64_t>(b.get("bytes").as_int(0)),
      ceiling.max_resident_bytes);
  out.max_steps = tighten(static_cast<std::uint64_t>(b.get("steps").as_int(0)),
                          ceiling.max_steps);
  out.max_depth = static_cast<int>(
      tighten(static_cast<std::uint64_t>(b.get("depth").as_int(0)),
              static_cast<std::uint64_t>(ceiling.max_depth)));
  out.deadline_ms =
      tighten(static_cast<std::uint64_t>(b.get("deadline_ms").as_int(0)),
              ceiling.deadline_ms);
  return out;
}

std::optional<std::uint64_t> parse_hex_key(const std::string& s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

/// Callable function names of an entry (for compile replies): the checked
/// program's functions when the source forms are present, otherwise every
/// module function that carries a serialized signature.
Json::Array callable_functions(const CacheEntry& entry) {
  Json::Array names;
  if (entry.compiled != nullptr) {
    for (const lang::FunDef& f : entry.compiled->checked.functions) {
      names.emplace_back(f.name);
    }
    return names;
  }
  for (std::uint32_t i = 0; i < entry.module->functions.size(); ++i) {
    if (entry.module->signature(i) != nullptr &&
        entry.module->functions[i].name != "__entry") {
      names.emplace_back(entry.module->functions[i].name);
    }
  }
  return names;
}

/// Flat JSON object of a registry: scalar counters/gauges plus the
/// histogram summaries under the same dotted-suffix scheme as
/// MetricsRegistry::write_json (docs/OBSERVABILITY.md).
Json metrics_object(const obs::MetricsRegistry& metrics) {
  Json::Object obj;
  for (const auto& [name, value] : metrics.all()) obj[name] = value;
  for (const auto& [name, h] : metrics.histograms()) {
    obj[name + ".count"] = h.count();
    obj[name + ".max"] = h.max();
    obj[name + ".min"] = h.min();
    obj[name + ".p50"] = h.p50();
    obj[name + ".p95"] = h.p95();
    obj[name + ".p99"] = h.p99();
    obj[name + ".sum"] = h.sum();
  }
  return Json(std::move(obj));
}

/// One recorded trace event as a Chrome trace-event object — the JSON
/// twin of Tracer::write_chrome_trace, producing serve::Json values the
/// reply can embed ("ts"/"dur" in microseconds as doubles).
Json chrome_event(const obs::TraceEvent& e) {
  Json::Object ev;
  ev["name"] = e.name;
  ev["cat"] = e.cat;
  const bool is_span = e.kind == obs::TraceEvent::Kind::kSpan;
  ev["ph"] = is_span ? "X" : "i";
  ev["pid"] = 1;
  ev["tid"] = static_cast<std::uint64_t>(e.tid);
  ev["ts"] = static_cast<double>(e.start_ns) / 1000.0;
  if (is_span) {
    ev["dur"] = static_cast<double>(e.dur_ns) / 1000.0;
  } else {
    ev["s"] = "t";
  }
  Json::Object args;
  for (const obs::Counter& c : e.counters) args[c.first] = c.second;
  if (!e.text.empty()) args["expr"] = e.text;
  ev["args"] = Json(std::move(args));
  return Json(std::move(ev));
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_dir),
      started_(Clock::now()),
      rid_base_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count())) {
  if (options_.telemetry) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    h_request_us_ = metrics_.histogram_handle("serve.request.duration_us");
    h_eval_us_ = metrics_.histogram_handle("serve.eval.duration_us");
    h_compile_us_ = metrics_.histogram_handle("serve.compile.duration_us");
    h_eval_hit_us_ = metrics_.histogram_handle("serve.eval.hit.duration_us");
    h_eval_miss_us_ = metrics_.histogram_handle("serve.eval.miss.duration_us");
  }
}

void Server::count(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.add(name, delta);
}

void Server::observe_metric(const std::string& name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.observe(name, value);
}

obs::MetricsRegistry Server::metrics() const {
  obs::MetricsRegistry snapshot;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    snapshot = metrics_;
  }
  // Gauges are stamped on the snapshot, outside the lock: point-in-time
  // values, not part of the accumulated registry.
  snapshot.set_gauge(
      "serve.uptime_seconds",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                           started_)
              .count()));
  snapshot.set_gauge("serve.requests_inflight",
                     inflight_.load(std::memory_order_relaxed));
  snapshot.set_gauge("serve.queue_depth",
                     queue_depth_.load(std::memory_order_relaxed));
  snapshot.set_gauge("serve.active_conns",
                     active_conns_.load(std::memory_order_relaxed));
  snapshot.set_gauge("vl.arena.slots",
                     arena_slots_.load(std::memory_order_relaxed));
  snapshot.set_gauge("vl.arena.bytes_planned",
                     arena_bytes_planned_.load(std::memory_order_relaxed));
  return snapshot;
}

bool Server::sampled(std::uint64_t seq) const {
  const double rate = options_.trace_sample_rate;
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Deterministic, exactly rate-proportional over any prefix: request
  // `seq` is sampled iff the integer part of seq*rate advanced.
  const double prev = std::floor(static_cast<double>(seq - 1) * rate);
  const double cur = std::floor(static_cast<double>(seq) * rate);
  return cur > prev;
}

std::string Server::handle_line(const std::string& line) {
  std::string parse_error;
  std::optional<Json> request = parse_json(line, &parse_error);
  if (!request.has_value()) {
    count("serve.requests");
    count("serve.errors.parse");
    Json reply = error_reply(Json(), error_value("parse", "", parse_error));
    if (options_.telemetry) {
      const std::uint64_t seq =
          seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      const std::string request_id =
          vm::hash_hex(rid_base_ ^ (seq * 0x9E3779B97F4A7C15ULL));
      if (Json::Object* obj = reply.if_object()) {
        (*obj)["request_id"] = request_id;
      }
      if (obs::log_enabled(obs::LogLevel::kWarn)) {
        obs::log(obs::LogLevel::kWarn, "serve.request",
                 {{"request_id", request_id},
                  {"op", "(parse)"},
                  {"ok", std::uint64_t{0}},
                  {"error_kind", "parse"},
                  {"message", parse_error}});
      }
    }
    return reply.dump();
  }
  return handle_request(*request).dump();
}

Json Server::handle_request(const Json& request) {
  count("serve.requests");
  if (!options_.telemetry) return dispatch_op(request);

  // The telemetry envelope: a request id, the inflight gauge, the
  // duration histograms, one log line, and — for sampled requests — a
  // per-request tracer installed as this thread's sink so concurrent
  // workers never interleave spans.
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string request_id =
      vm::hash_hex(rid_base_ ^ (seq * 0x9E3779B97F4A7C15ULL));
  const std::string& op = request.get("op").as_string();

  struct InflightGuard {
    std::atomic<std::uint64_t>& gauge;
    explicit InflightGuard(std::atomic<std::uint64_t>& g) : gauge(g) {
      gauge.fetch_add(1, std::memory_order_relaxed);
    }
    ~InflightGuard() { gauge.fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard(inflight_);

  const Clock::time_point start = Clock::now();
  if (sampled(seq)) {
    obs::Tracer request_tracer;
    const obs::ThreadTracerScope scope(&request_tracer);
    Json reply = dispatch_op(request);
    return finish_request(request, std::move(reply), request_id, op,
                          elapsed_ns(start) / 1000, &request_tracer);
  }
  Json reply = dispatch_op(request);
  return finish_request(request, std::move(reply), request_id, op,
                        elapsed_ns(start) / 1000, nullptr);
}

Json Server::finish_request(const Json& request, Json reply,
                            const std::string& request_id,
                            const std::string& op, std::uint64_t duration_us,
                            obs::Tracer* request_tracer) {
  if (Json::Object* obj = reply.if_object()) {
    (*obj)["request_id"] = request_id;
  }

  const bool ok = reply.get("ok").as_bool(false);
  const bool cached = reply.get("cached").as_bool(false);
  {
    // One lock acquisition for all of this request's observations,
    // through the handles pre-registered at construction — the
    // unsampled fast path pays a lock and a few array increments, not
    // name lookups or string temporaries.
    std::lock_guard<std::mutex> lock(metrics_mu_);
    h_request_us_->observe(duration_us);
    if (op == "eval") {
      h_eval_us_->observe(duration_us);
      if (ok) {
        (cached ? h_eval_hit_us_ : h_eval_miss_us_)->observe(duration_us);
      }
    } else if (op == "compile") {
      h_compile_us_->observe(duration_us);
    }
  }

  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    std::vector<obs::LogField> fields;
    fields.reserve(8);
    fields.emplace_back("request_id", request_id);
    fields.emplace_back("op", op);
    fields.emplace_back("ok", static_cast<std::uint64_t>(ok ? 1 : 0));
    fields.emplace_back("duration_us", duration_us);
    if (op == "eval" || op == "compile") {
      fields.emplace_back("cache", cached ? "hit" : "miss");
    }
    if (reply.has("engine")) {
      fields.emplace_back("engine", reply.get("engine").as_string());
    }
    if (!ok) {
      const Json& error = reply.get("error");
      fields.emplace_back("error_kind", error.get("kind").as_string());
      const std::string& code = error.get("code").as_string();
      if (!code.empty()) fields.emplace_back("error_code", code);
    }
    if (request_tracer != nullptr) fields.emplace_back("sampled", "true");
    obs::log(obs::LogLevel::kInfo, "serve.request", fields);
  }

  if (request_tracer != nullptr && options_.trace_ring_capacity > 0) {
    RequestTrace trace;
    trace.request_id = request_id;
    trace.op = op;
    trace.duration_us = duration_us;
    trace.events = request_tracer->events();
    std::uint64_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(trace_mu_);
      trace_ring_.push_back(std::move(trace));
      while (trace_ring_.size() > options_.trace_ring_capacity) {
        trace_ring_.pop_front();
        ++dropped;
      }
    }
    count("serve.trace.sampled");
    if (dropped > 0) count("serve.trace.dropped", dropped);
  }

  (void)request;
  return reply;
}

Json Server::dispatch_op(const Json& request) {
  const std::string& op = request.get("op").as_string();
  if (op == "ping") {
    Json::Object reply;
    if (request.has("id")) reply["id"] = request.get("id");
    reply["ok"] = true;
    reply["pong"] = true;
    return Json(std::move(reply));
  }
  if (op == "compile") return do_compile(request);
  if (op == "eval") return do_eval(request);
  if (op == "metrics") return do_metrics(request);
  if (op == "trace") return do_trace(request);
  if (op == "health") return do_health(request);
  if (op == "shutdown") {
    request_stop();
    Json::Object reply;
    if (request.has("id")) reply["id"] = request.get("id");
    reply["ok"] = true;
    reply["stopping"] = true;
    return Json(std::move(reply));
  }
  count("serve.errors.bad_request");
  return error_reply(request,
                     error_value("bad_request", "",
                                 "unknown op '" + op +
                                     "' (expected ping/compile/eval/"
                                     "metrics/trace/health/shutdown)"));
}

Json Server::do_health(const Json& req) {
  Json::Object reply;
  if (req.has("id")) reply["id"] = req.get("id");
  reply["ok"] = true;
  const char* status = "ok";
  if (stopping()) {
    status = "stopping";
  } else if (draining()) {
    status = "draining";
  }
  reply["status"] = status;
  reply["draining"] = draining();
  reply["uptime_seconds"] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - started_)
          .count());
  reply["queue_depth"] = queue_depth_.load(std::memory_order_relaxed);
  reply["active_conns"] = active_conns_.load(std::memory_order_relaxed);
  reply["inflight"] = inflight_.load(std::memory_order_relaxed);
  reply["cache_entries"] = static_cast<std::uint64_t>(cache_.size());
  return Json(std::move(reply));
}

void Server::begin_drain() {
  int expected = static_cast<int>(Lifecycle::kRunning);
  if (!lifecycle_.compare_exchange_strong(
          expected, static_cast<int>(Lifecycle::kDraining),
          std::memory_order_acq_rel)) {
    return;  // already draining or stopping
  }
  const std::int64_t grace_ms =
      options_.drain_ms > 0 ? static_cast<std::int64_t>(options_.drain_ms) : 0;
  drain_deadline_ns_.store(now_ns() + grace_ms * 1'000'000,
                           std::memory_order_release);
  count("serve.drain.begun");
}

int Server::drain_remaining_ms() const {
  if (!draining()) return -1;
  const std::int64_t deadline =
      drain_deadline_ns_.load(std::memory_order_acquire);
  const std::int64_t left_ns = deadline - now_ns();
  if (left_ns <= 0) return 0;
  return static_cast<int>(
      std::min<std::int64_t>(left_ns / 1'000'000 + 1, INT_MAX));
}

void Server::poll_external_shutdown() {
  const volatile std::sig_atomic_t* flag = options_.shutdown_flag;
  if (flag != nullptr && *flag != 0) begin_drain();
}

std::optional<CacheEntry> Server::obtain(const Json& req, std::uint64_t* key,
                                         bool* cache_hit, Json* error) {
  *cache_hit = false;
  const bool has_source = req.get("source").is_string();
  const std::string& source = req.get("source").as_string();
  const std::string& entry_expr = req.get("entry").as_string();
  const std::string tag = vm::options_tag(options_.optimize, options_.verify);

  if (req.has("key")) {
    std::optional<std::uint64_t> parsed =
        parse_hex_key(req.get("key").as_string());
    if (!parsed.has_value()) {
      *error = error_value("bad_request", "",
                           "\"key\" must be 16 lowercase hex digits");
      return std::nullopt;
    }
    *key = *parsed;
  } else if (has_source) {
    // The entry expression compiles with the program, so it is part of
    // the identity of the compilation (0x1E = record separator: no P
    // source can collide across the boundary).
    *key = vm::source_hash(source + '\x1E' + entry_expr, tag);
  } else {
    *error = error_value("bad_request", "",
                         "request needs \"source\" or \"key\"");
    return std::nullopt;
  }

  if (std::optional<CacheEntry> hit = cache_.lookup(*key, options_.verify)) {
    *cache_hit = true;
    count("serve.cache.hit");
    return hit;
  }
  count("serve.cache.miss");
  if (!has_source) {
    *error = error_value(
        "unknown_key", "",
        "key " + vm::hash_hex(*key) +
            " is not cached here; resend with \"source\"");
    return std::nullopt;
  }

  const Clock::time_point start = Clock::now();
  try {
    xform::PipelineOptions po;
    po.optimize_vcode = options_.optimize;
    po.verify_vcode = options_.verify;
    auto compiled = std::make_shared<const xform::Compiled>(
        xform::compile(source, entry_expr, po));
    count("serve.compile.count");
    count("serve.compile.wall_ns", elapsed_ns(start));
    return cache_.insert(*key, CacheEntry{compiled, compiled->module});
  } catch (const analysis::AnalysisError& e) {
    std::string code;
    for (const analysis::Diagnostic& d : e.report().diagnostics()) {
      if (d.severity == analysis::Severity::kError) {
        code = d.code;
        break;
      }
    }
    *error = error_value("compile", code, e.what());
  } catch (const rt::RuntimeTrap& trap) {
    // A compile-time trap (e.g. a deadline inherited from an enclosing
    // scope, or an injected optimizer fault with fallback exhausted).
    count(std::string("serve.trap.") + trap.code());
    *error = error_value("trap", trap.code(), trap.what());
  } catch (const Error& e) {
    *error = error_value("compile", "", e.what());
  }
  count("serve.errors.compile");
  return std::nullopt;
}

Json Server::do_compile(const Json& req) {
  std::uint64_t key = 0;
  bool cache_hit = false;
  Json error;
  std::optional<CacheEntry> entry = obtain(req, &key, &cache_hit, &error);
  if (!entry.has_value()) return error_reply(req, std::move(error));

  Json::Object reply;
  if (req.has("id")) reply["id"] = req.get("id");
  reply["ok"] = true;
  reply["key"] = vm::hash_hex(key);
  reply["cached"] = cache_hit;
  reply["functions"] = callable_functions(*entry);
  if (entry->compiled != nullptr && !entry->compiled->compile_fallbacks.empty()) {
    Json::Array fallbacks;
    for (const std::string& f : entry->compiled->compile_fallbacks) {
      fallbacks.emplace_back(f);
    }
    reply["compile_fallbacks"] = std::move(fallbacks);
  }
  return Json(std::move(reply));
}

Json Server::do_eval(const Json& req) {
  const Clock::time_point start = Clock::now();
  std::uint64_t key = 0;
  bool cache_hit = false;
  Json error;
  std::optional<CacheEntry> entry = obtain(req, &key, &cache_hit, &error);
  if (!entry.has_value()) return error_reply(req, std::move(error));

  const bool has_fun = req.get("fun").is_string();
  const std::string& fun = req.get("fun").as_string();
  if (!has_fun && !req.get("entry").is_string() &&
      !(entry->compiled == nullptr && entry->module->entry >= 0)) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "",
                                        "eval needs \"fun\" or \"entry\""));
  }

  // Argument literals parse OUTSIDE the governor scope of the run (they
  // are request plumbing, not program work) but still under try: a bad
  // literal is the client's error, reported structurally.
  std::string budget_error;
  const rt::ExecBudget budget =
      effective_budget(req, options_.max_budget, &budget_error);
  if (!budget_error.empty()) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "", budget_error));
  }
  try {
    interp::ValueList args;
    for (const Json& a : req.get("args").as_array()) {
      if (!a.is_string()) {
        count("serve.errors.bad_request");
        return error_reply(
            req, error_value("bad_request", "",
                             "\"args\" must be P literals as strings"));
      }
      args.push_back(parse_value(a.as_string()));
    }

    interp::Value result;
    obs::MetricsRegistry run_metrics;
    Json degradations;
    std::string engine = "vm";
    if (entry->compiled != nullptr) {
      Session session(entry->compiled);
      session.set_budget(budget);
      session.set_arena(options_.arena);
      session.set_admission(options_.admission);
      result = has_fun ? session.run_vm(fun, args) : session.run_entry_vm();
      run_metrics = session.last_cost().metrics;
      if (!session.last_degradations().empty()) {
        Json::Array lines;
        for (const std::string& d : session.last_degradations()) {
          lines.emplace_back(d);
        }
        degradations = Json(std::move(lines));
      }
    } else {
      // Disk-rehydrated module: no source forms in this process, so the
      // run is VM-only, driven by the module's serialized signatures.
      ModuleRunner runner(entry->module);
      runner.set_budget(budget);
      runner.set_arena(options_.arena);
      runner.set_admission(options_.admission);
      result = has_fun ? runner.run(fun, args) : runner.run_entry();
      run_metrics = runner.last_cost().metrics;
      engine = "vm-module";
    }

    count("serve.eval.count");
    if (cache_hit) count("serve.eval.warm");
    count("serve.eval.wall_ns", elapsed_ns(start));
    // Accumulate the allocator counters across evals (OpenMetrics
    // counters) and remember the plan gauges of this eval.
    count("vl.buffer_allocs", run_metrics.get("vl.buffer_allocs"));
    count("vl.arena.recycled", run_metrics.get("vl.arena.recycled"));
    count("vl.arena.heap_fallbacks",
          run_metrics.get("vl.arena.heap_fallbacks"));
    arena_slots_.store(run_metrics.get("vl.arena.slots"),
                       std::memory_order_relaxed);
    arena_bytes_planned_.store(run_metrics.get("vl.arena.bytes_planned"),
                               std::memory_order_relaxed);

    Json::Object reply;
    if (req.has("id")) reply["id"] = req.get("id");
    reply["ok"] = true;
    reply["key"] = vm::hash_hex(key);
    reply["cached"] = cache_hit;
    reply["engine"] = engine;
    reply["result"] = interp::to_text(result);
    reply["metrics"] = metrics_object(run_metrics);
    if (!degradations.is_null()) reply["degradations"] = degradations;
    return Json(std::move(reply));
  } catch (const rt::RuntimeTrap& trap) {
    // The request exhausted ITS budget; the daemon is healthy and the
    // reply says exactly what tripped (docs/ROBUSTNESS.md trap table).
    count(std::string("serve.trap.") + trap.code());
    count("serve.errors.trap");
    Json::Object e;
    e["kind"] = "trap";
    e["code"] = trap.code();
    e["message"] = trap.what();
    e["site"] = trap.site();
    e["bytes_at_trip"] = trap.bytes_at_trip();
    e["steps_at_trip"] = trap.steps_at_trip();
    return error_reply(req, Json(std::move(e)));
  } catch (const SyntaxError& e) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "",
                                        std::string("bad argument literal: ") +
                                            e.what()));
  } catch (const TypeError& e) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "",
                                        std::string("bad argument literal: ") +
                                            e.what()));
  } catch (const Error& e) {
    count("serve.errors.runtime");
    return error_reply(req, error_value("runtime", "", e.what()));
  }
}

Json Server::do_metrics(const Json& req) {
  const Json& format = req.get("format");
  if (!format.is_null() && format.as_string() != "json" &&
      format.as_string() != "openmetrics") {
    count("serve.errors.bad_request");
    return error_reply(
        req, error_value("bad_request", "",
                         "unknown metrics format '" + format.as_string() +
                             "' (expected json or openmetrics)"));
  }

  // Snapshot under the lock (inside metrics()), render outside it: an
  // expensive exposition must not stall request workers.
  const obs::MetricsRegistry snapshot = metrics();
  Json::Object reply;
  if (req.has("id")) reply["id"] = req.get("id");
  reply["ok"] = true;
  if (format.as_string() == "openmetrics") {
    std::ostringstream body;
    snapshot.write_openmetrics(body);
    reply["content_type"] =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    reply["body"] = body.str();
  } else {
    reply["metrics"] = metrics_object(snapshot);
    reply["cache_entries"] = static_cast<std::uint64_t>(cache_.size());
  }
  return Json(std::move(reply));
}

Json Server::do_trace(const Json& req) {
  const std::string& want = req.get("request_id").as_string();
  const std::int64_t limit = req.get("limit").as_int(0);
  if (req.has("limit") && limit <= 0) {
    count("serve.errors.bad_request");
    return error_reply(
        req, error_value("bad_request", "", "\"limit\" must be positive"));
  }

  std::vector<RequestTrace> picked;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    for (const RequestTrace& t : trace_ring_) {
      if (want.empty() || t.request_id == want) picked.push_back(t);
    }
  }
  if (limit > 0 && picked.size() > static_cast<std::size_t>(limit)) {
    // Keep the most recent `limit` traces.
    picked.erase(picked.begin(),
                 picked.end() - static_cast<std::ptrdiff_t>(limit));
  }

  Json::Array traces;
  traces.reserve(picked.size());
  for (const RequestTrace& t : picked) {
    Json::Array events;
    events.reserve(t.events.size());
    for (const obs::TraceEvent& e : t.events) events.push_back(chrome_event(e));
    Json::Object doc;
    doc["traceEvents"] = Json(std::move(events));
    doc["displayTimeUnit"] = "ms";
    Json::Object entry;
    entry["request_id"] = t.request_id;
    entry["op"] = t.op;
    entry["duration_us"] = t.duration_us;
    entry["trace"] = Json(std::move(doc));
    traces.push_back(Json(std::move(entry)));
  }

  Json::Object reply;
  if (req.has("id")) reply["id"] = req.get("id");
  reply["ok"] = true;
  reply["traces"] = Json(std::move(traces));
  return Json(std::move(reply));
}

int Server::serve_stdio(std::istream& in, std::ostream& out) {
  // Drain on stdio is trivial: a request line already read is served to
  // completion (the signal handler only sets a flag, so handle_line is
  // never interrupted), then the loop stops reading and returns 0. A
  // SIGTERM that lands while getline is blocked fails the stream with
  // EINTR (proteusd installs its handlers without SA_RESTART), which the
  // flag check below turns into a clean drain instead of an error.
  std::string line;
  for (;;) {
    poll_external_shutdown();
    if (stopping() || draining()) break;
    if (!std::getline(in, line)) {
      poll_external_shutdown();
      break;
    }
    if (line.empty()) continue;
    out << handle_line(line) << "\n" << std::flush;
  }
  return 0;
}

#if !defined(_WIN32)

namespace {

/// send(2) until done; false on a closed/broken connection. MSG_NOSIGNAL
/// turns a peer that vanished mid-reply into EPIPE instead of SIGPIPE.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Binds + listens on host:port; returns the fd (or -1) and the bound
/// port via *bound_port (for port 0 requests).
int listen_on(const std::string& host, int port, int* bound_port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return -1;
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd);
    return -1;
  }
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  *bound_port = static_cast<int>(ntohs(bound.sin_port));
  return listen_fd;
}

}  // namespace

Server::IoStatus Server::conn_read(int fd, char* buf, std::size_t cap,
                                   int timeout_ms, std::size_t* got) {
  *got = 0;
  // Chaos sites (rt/fault.hpp). Both act as a peer that is gone: a
  // sock-read fires as a reset, a sock-stall as a client that will never
  // make progress again — reclaimed immediately rather than waiting out
  // the timeout it would otherwise hit. Neither leaves a reply behind,
  // exactly like the real failure it simulates; only the counter differs.
  if (rt::detail::fire_sock_read()) {
    count("serve.trap.S006");
    return IoStatus::kError;
  }
  if (rt::detail::fire_sock_stall()) {
    count("serve.trap.S008");
    return IoStatus::kError;
  }
  for (;;) {
    if (stopping()) return IoStatus::kStopped;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (ready == 0) return IoStatus::kTimeout;
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      *got = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoStatus::kError;
  }
}

Server::IoStatus Server::conn_write(int fd, const std::string& data,
                                    int timeout_ms) {
  if (rt::detail::fire_sock_write()) {
    count("serve.trap.S007");
    return IoStatus::kError;
  }
  std::size_t off = 0;
  Clock::time_point last_progress = Clock::now();
  while (off < data.size()) {
    int slice = 200;
    if (timeout_ms > 0) {
      const int waited = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - last_progress)
              .count());
      if (waited >= timeout_ms) return IoStatus::kTimeout;
      slice = std::min(slice, timeout_ms - waited);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (ready == 0) continue;
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      last_progress = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

void Server::send_trap_frame(int fd, ServeTrap trap) {
  count(std::string("serve.trap.") + serve_trap_code(trap));
  Json::Object e;
  e["kind"] = serve_trap_kind(trap);
  e["code"] = serve_trap_code(trap);
  e["message"] = serve_trap_reason(trap);
  if (serve_trap_retryable(trap)) {
    e["retry_after_ms"] =
        static_cast<std::int64_t>(std::max(options_.retry_after_ms, 0));
  }
  Json::Object reply;
  reply["ok"] = false;
  reply["error"] = Json(std::move(e));
  // Best-effort with a short bound: a retired connection must never hold
  // its worker (or the accept loop) hostage just to hear why.
  (void)conn_write(fd, Json(std::move(reply)).dump() + "\n", 250);
}

void Server::serve_connection(int fd) {
  // During a drain an *idle* connection only gets this much more grace
  // before being retired with S005 — the worker has queued connections
  // to serve before the deadline. Mid-request connections may run up to
  // the full drain deadline.
  constexpr int kDrainIdleGraceMs = 100;

  std::string buffer;
  char chunk[4096];
  Clock::time_point wait_start = Clock::now();
  std::optional<Clock::time_point> drain_seen;
  for (;;) {
    if (stopping()) {
      send_trap_frame(fd, ServeTrap::kDraining);
      break;
    }
    const bool idle = buffer.empty();
    const int limit = idle ? options_.idle_timeout_ms : options_.io_timeout_ms;
    const int waited = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              wait_start)
            .count());
    if (limit > 0 && waited >= limit) {
      send_trap_frame(
          fd, idle ? ServeTrap::kIdleTimeout : ServeTrap::kIoTimeout);
      break;
    }
    // Wait in short slices so lifecycle changes (drain/stop) are observed
    // within ~200ms even under a 60s idle timeout.
    int slice = 200;
    if (limit > 0) slice = std::min(slice, limit - waited);
    const int drain_left = drain_remaining_ms();
    if (drain_left >= 0) {
      if (!drain_seen.has_value()) drain_seen = Clock::now();
      const int in_drain = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                *drain_seen)
              .count());
      if (drain_left == 0 || (idle && in_drain >= kDrainIdleGraceMs)) {
        send_trap_frame(fd, ServeTrap::kDraining);
        break;
      }
      slice = std::min(
          slice, idle ? std::max(kDrainIdleGraceMs - in_drain, 1) : drain_left);
    }

    std::size_t got = 0;
    const IoStatus st = conn_read(fd, chunk, sizeof chunk, slice, &got);
    if (st == IoStatus::kTimeout) continue;  // slice over; loop re-checks
    if (st == IoStatus::kStopped) {
      send_trap_frame(fd, ServeTrap::kDraining);
      break;
    }
    if (st != IoStatus::kOk) break;  // kClosed / kError: nothing to say

    buffer.append(chunk, got);
    bool done = false;
    std::size_t nl = 0;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      if (options_.max_line_bytes > 0 && nl > options_.max_line_bytes) {
        send_trap_frame(fd, ServeTrap::kLineTooLong);
        done = true;
        break;
      }
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      const IoStatus ws =
          conn_write(fd, handle_line(line) + "\n", options_.io_timeout_ms);
      if (ws != IoStatus::kOk) {
        // A peer that stops reading its replies is as stalled as one
        // that stops sending; no frame can reach it, so only count.
        if (ws == IoStatus::kTimeout) count("serve.trap.S003");
        done = true;
        break;
      }
    }
    if (done) break;
    // A newline-free client must not grow the buffer without bound: the
    // check above only sees *extracted* lines, this one the residue.
    if (options_.max_line_bytes > 0 && buffer.size() > options_.max_line_bytes) {
      send_trap_frame(fd, ServeTrap::kLineTooLong);
      break;
    }
    wait_start = Clock::now();
  }
  ::close(fd);
}

int Server::serve_tcp(const std::string& host, int port,
                      std::ostream& announce) {
  int bound_port = 0;
  int listen_fd = listen_on(host, port, &bound_port);
  if (listen_fd < 0) return 1;
  tcp_port_.store(bound_port, std::memory_order_release);
  announce << "proteusd listening on " << bound_port << "\n" << std::flush;

  // Connection queue + worker pool. Workers own one connection at a time
  // and call handle_line per request line (handle_line is thread-safe).
  // Admission is bounded: the queue never exceeds max_queue, and beyond
  // it (or max_conns total) a connection is shed with an S001 frame.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> pending;
  auto worker = [this, &mu, &cv, &pending] {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || stopping(); });
        if (stopping()) return;  // leftovers are retired below with S005
        fd = pending.front();
        pending.pop_front();
      }
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      active_conns_.fetch_add(1, std::memory_order_relaxed);
      serve_connection(fd);
      active_conns_.fetch_sub(1, std::memory_order_relaxed);
    }
  };
  const int n_workers = options_.workers > 0 ? options_.workers : 1;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) workers.emplace_back(worker);

  while (!stopping()) {
    poll_external_shutdown();
    if (draining()) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // re-check lifecycle 5x/second
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      count("serve.accept_errors");
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: hot-looping poll+accept would spin at 100%
        // CPU while fixing nothing. Back off and let workers close fds.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    const auto queued = queue_depth_.load(std::memory_order_relaxed);
    const auto active = active_conns_.load(std::memory_order_relaxed);
    const bool over_queue =
        options_.max_queue > 0 &&
        queued >= static_cast<std::uint64_t>(options_.max_queue);
    const bool over_conns =
        options_.max_conns > 0 &&
        queued + active >= static_cast<std::uint64_t>(options_.max_conns);
    if (over_queue || over_conns) {
      count("serve.shed_total");
      send_trap_frame(conn, ServeTrap::kOverload);
      ::close(conn);
      continue;
    }
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(conn);
    }
    cv.notify_one();
  }

  if (draining() && !stopping()) {
    // Stop accepting NOW (close the listener so new connections are
    // refused, not parked in the kernel backlog), serve what is queued
    // and in flight until the drain deadline or until everything is
    // done, then stop.
    ::close(listen_fd);
    listen_fd = -1;
    for (;;) {
      const int left = drain_remaining_ms();
      bool empty = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        empty = pending.empty();
      }
      if (left == 0 || stopping() ||
          (empty && active_conns_.load(std::memory_order_relaxed) == 0)) {
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min(left, 20)));
    }
    request_stop();
  }

  cv.notify_all();
  for (std::thread& t : workers) t.join();
  {
    // Connections still queued at stop are retired with an S005 frame —
    // a deliberate refusal the client can retry elsewhere, not silence.
    std::lock_guard<std::mutex> lock(mu);
    for (int fd : pending) {
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      send_trap_frame(fd, ServeTrap::kDraining);
      ::close(fd);
    }
    pending.clear();
  }
  if (listen_fd >= 0) ::close(listen_fd);
  return 0;
}

int Server::serve_metrics_http(const std::string& host, int port,
                               std::ostream& announce) {
  int bound_port = 0;
  const int listen_fd = listen_on(host, port, &bound_port);
  if (listen_fd < 0) return 1;
  metrics_port_.store(bound_port, std::memory_order_release);
  announce << "proteusd metrics on " << bound_port << "\n" << std::flush;

  // Scrapes are rare (Prometheus default: every 15s), so one thread
  // serving one connection at a time is plenty. The exposition stays up
  // through a drain (probes want to watch the drain happen) and winds
  // down at the drain deadline even when this is the only transport.
  while (!stopping()) {
    poll_external_shutdown();
    if (drain_remaining_ms() == 0) request_stop();
    if (stopping()) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // re-check stop 5x/second
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      count("serve.accept_errors");
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }

    // Read the request head (bounded; a scraper's GET fits in one read).
    std::string head;
    char chunk[4096];
    while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
      pollfd cfd{conn, POLLIN, 0};
      if (::poll(&cfd, 1, 1000) <= 0) break;
      const ssize_t n = ::read(conn, chunk, sizeof chunk);
      if (n <= 0) break;
      head.append(chunk, static_cast<std::size_t>(n));
    }

    const bool is_metrics = head.rfind("GET /metrics ", 0) == 0 ||
                            head.rfind("GET /metrics\r", 0) == 0 ||
                            head.rfind("GET /metrics HTTP", 0) == 0;
    std::string response;
    if (is_metrics) {
      std::ostringstream body;
      metrics().write_openmetrics(body);
      const std::string text = body.str();
      response =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: application/openmetrics-text; version=1.0.0; "
          "charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(text.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          text;
    } else {
      response =
          "HTTP/1.0 404 Not Found\r\n"
          "Content-Type: text/plain\r\n"
          "Content-Length: 10\r\n"
          "Connection: close\r\n\r\nnot found\n";
    }
    (void)write_all(conn, response);
    ::close(conn);
  }

  ::close(listen_fd);
  return 0;
}

#else  // _WIN32

int Server::serve_tcp(const std::string&, int, std::ostream&) {
  return 1;  // TCP transport is POSIX-only; use --stdio.
}

int Server::serve_metrics_http(const std::string&, int, std::ostream&) {
  return 1;  // POSIX-only, like serve_tcp.
}

#endif

}  // namespace proteus::serve
