#include "serve/server.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/proteus.hpp"
#include "rt/trap.hpp"
#include "vm/module_io.hpp"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace proteus::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

Json error_value(const char* kind, std::string code, std::string message) {
  Json::Object e;
  e["kind"] = kind;
  if (!code.empty()) e["code"] = std::move(code);
  e["message"] = std::move(message);
  return Json(std::move(e));
}

/// Wraps an error object into a full reply.
Json error_reply(const Json& request, Json error) {
  Json::Object reply;
  if (request.has("id")) reply["id"] = request.get("id");
  reply["ok"] = false;
  reply["error"] = std::move(error);
  return Json(std::move(reply));
}

/// The request's effective budget: the server ceiling, tightened (never
/// widened) by the request's own "budget" object — a client cannot
/// out-budget the daemon it talks to. A budget that is not an object, or
/// that carries an unknown knob, sets *error instead of being silently
/// ignored: a typo ("max_depth") must not grant an unlimited run.
rt::ExecBudget effective_budget(const Json& req,
                                const rt::ExecBudget& ceiling,
                                std::string* error) {
  auto tighten = [](std::uint64_t requested, std::uint64_t max) {
    if (max == 0) return requested;
    if (requested == 0 || requested > max) return max;
    return requested;
  };
  const Json& b = req.get("budget");
  if (!b.is_null()) {
    if (!b.is_object()) {
      *error = "\"budget\" must be an object";
      return ceiling;
    }
    for (const auto& [knob, value] : b.as_object()) {
      if (knob != "bytes" && knob != "steps" && knob != "depth" &&
          knob != "deadline_ms") {
        *error = "unknown budget knob \"" + knob +
                 "\" (expected bytes, steps, depth, deadline_ms)";
        return ceiling;
      }
      if (!value.is_number()) {
        *error = "budget knob \"" + knob + "\" must be a number";
        return ceiling;
      }
    }
  }
  rt::ExecBudget out;
  out.max_resident_bytes = tighten(
      static_cast<std::uint64_t>(b.get("bytes").as_int(0)),
      ceiling.max_resident_bytes);
  out.max_steps = tighten(static_cast<std::uint64_t>(b.get("steps").as_int(0)),
                          ceiling.max_steps);
  out.max_depth = static_cast<int>(
      tighten(static_cast<std::uint64_t>(b.get("depth").as_int(0)),
              static_cast<std::uint64_t>(ceiling.max_depth)));
  out.deadline_ms =
      tighten(static_cast<std::uint64_t>(b.get("deadline_ms").as_int(0)),
              ceiling.deadline_ms);
  return out;
}

std::optional<std::uint64_t> parse_hex_key(const std::string& s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

/// Callable function names of an entry (for compile replies): the checked
/// program's functions when the source forms are present, otherwise every
/// module function that carries a serialized signature.
Json::Array callable_functions(const CacheEntry& entry) {
  Json::Array names;
  if (entry.compiled != nullptr) {
    for (const lang::FunDef& f : entry.compiled->checked.functions) {
      names.emplace_back(f.name);
    }
    return names;
  }
  for (std::uint32_t i = 0; i < entry.module->functions.size(); ++i) {
    if (entry.module->signature(i) != nullptr &&
        entry.module->functions[i].name != "__entry") {
      names.emplace_back(entry.module->functions[i].name);
    }
  }
  return names;
}

Json metrics_object(const obs::MetricsRegistry& metrics) {
  Json::Object obj;
  for (const auto& [name, value] : metrics.all()) obj[name] = value;
  return Json(std::move(obj));
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_dir) {}

void Server::count(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.add(name, delta);
}

obs::MetricsRegistry Server::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_;
}

std::string Server::handle_line(const std::string& line) {
  std::string parse_error;
  std::optional<Json> request = parse_json(line, &parse_error);
  if (!request.has_value()) {
    count("serve.requests");
    count("serve.errors.parse");
    return error_reply(Json(), error_value("parse", "", parse_error)).dump();
  }
  return handle_request(*request).dump();
}

Json Server::handle_request(const Json& request) {
  count("serve.requests");
  const std::string& op = request.get("op").as_string();
  if (op == "ping") {
    Json::Object reply;
    if (request.has("id")) reply["id"] = request.get("id");
    reply["ok"] = true;
    reply["pong"] = true;
    return Json(std::move(reply));
  }
  if (op == "compile") return do_compile(request);
  if (op == "eval") return do_eval(request);
  if (op == "metrics") {
    Json reply = do_metrics();
    // do_metrics has no access to the request envelope; splice the id in.
    if (request.has("id")) {
      Json::Object obj = reply.as_object();
      obj["id"] = request.get("id");
      return Json(std::move(obj));
    }
    return reply;
  }
  if (op == "shutdown") {
    request_stop();
    Json::Object reply;
    if (request.has("id")) reply["id"] = request.get("id");
    reply["ok"] = true;
    reply["stopping"] = true;
    return Json(std::move(reply));
  }
  count("serve.errors.bad_request");
  return error_reply(request,
                     error_value("bad_request", "",
                                 "unknown op '" + op +
                                     "' (expected ping/compile/eval/"
                                     "metrics/shutdown)"));
}

std::optional<CacheEntry> Server::obtain(const Json& req, std::uint64_t* key,
                                         bool* cache_hit, Json* error) {
  *cache_hit = false;
  const bool has_source = req.get("source").is_string();
  const std::string& source = req.get("source").as_string();
  const std::string& entry_expr = req.get("entry").as_string();
  const std::string tag = vm::options_tag(options_.optimize, options_.verify);

  if (req.has("key")) {
    std::optional<std::uint64_t> parsed =
        parse_hex_key(req.get("key").as_string());
    if (!parsed.has_value()) {
      *error = error_value("bad_request", "",
                           "\"key\" must be 16 lowercase hex digits");
      return std::nullopt;
    }
    *key = *parsed;
  } else if (has_source) {
    // The entry expression compiles with the program, so it is part of
    // the identity of the compilation (0x1E = record separator: no P
    // source can collide across the boundary).
    *key = vm::source_hash(source + '\x1E' + entry_expr, tag);
  } else {
    *error = error_value("bad_request", "",
                         "request needs \"source\" or \"key\"");
    return std::nullopt;
  }

  if (std::optional<CacheEntry> hit = cache_.lookup(*key, options_.verify)) {
    *cache_hit = true;
    count("serve.cache.hit");
    return hit;
  }
  count("serve.cache.miss");
  if (!has_source) {
    *error = error_value(
        "unknown_key", "",
        "key " + vm::hash_hex(*key) +
            " is not cached here; resend with \"source\"");
    return std::nullopt;
  }

  const Clock::time_point start = Clock::now();
  try {
    xform::PipelineOptions po;
    po.optimize_vcode = options_.optimize;
    po.verify_vcode = options_.verify;
    auto compiled = std::make_shared<const xform::Compiled>(
        xform::compile(source, entry_expr, po));
    count("serve.compile.count");
    count("serve.compile.wall_ns", elapsed_ns(start));
    return cache_.insert(*key, CacheEntry{compiled, compiled->module});
  } catch (const analysis::AnalysisError& e) {
    std::string code;
    for (const analysis::Diagnostic& d : e.report().diagnostics()) {
      if (d.severity == analysis::Severity::kError) {
        code = d.code;
        break;
      }
    }
    *error = error_value("compile", code, e.what());
  } catch (const rt::RuntimeTrap& trap) {
    // A compile-time trap (e.g. a deadline inherited from an enclosing
    // scope, or an injected optimizer fault with fallback exhausted).
    count(std::string("serve.trap.") + trap.code());
    *error = error_value("trap", trap.code(), trap.what());
  } catch (const Error& e) {
    *error = error_value("compile", "", e.what());
  }
  count("serve.errors.compile");
  return std::nullopt;
}

Json Server::do_compile(const Json& req) {
  std::uint64_t key = 0;
  bool cache_hit = false;
  Json error;
  std::optional<CacheEntry> entry = obtain(req, &key, &cache_hit, &error);
  if (!entry.has_value()) return error_reply(req, std::move(error));

  Json::Object reply;
  if (req.has("id")) reply["id"] = req.get("id");
  reply["ok"] = true;
  reply["key"] = vm::hash_hex(key);
  reply["cached"] = cache_hit;
  reply["functions"] = callable_functions(*entry);
  if (entry->compiled != nullptr && !entry->compiled->compile_fallbacks.empty()) {
    Json::Array fallbacks;
    for (const std::string& f : entry->compiled->compile_fallbacks) {
      fallbacks.emplace_back(f);
    }
    reply["compile_fallbacks"] = std::move(fallbacks);
  }
  return Json(std::move(reply));
}

Json Server::do_eval(const Json& req) {
  const Clock::time_point start = Clock::now();
  std::uint64_t key = 0;
  bool cache_hit = false;
  Json error;
  std::optional<CacheEntry> entry = obtain(req, &key, &cache_hit, &error);
  if (!entry.has_value()) return error_reply(req, std::move(error));

  const bool has_fun = req.get("fun").is_string();
  const std::string& fun = req.get("fun").as_string();
  if (!has_fun && !req.get("entry").is_string() &&
      !(entry->compiled == nullptr && entry->module->entry >= 0)) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "",
                                        "eval needs \"fun\" or \"entry\""));
  }

  // Argument literals parse OUTSIDE the governor scope of the run (they
  // are request plumbing, not program work) but still under try: a bad
  // literal is the client's error, reported structurally.
  std::string budget_error;
  const rt::ExecBudget budget =
      effective_budget(req, options_.max_budget, &budget_error);
  if (!budget_error.empty()) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "", budget_error));
  }
  try {
    interp::ValueList args;
    for (const Json& a : req.get("args").as_array()) {
      if (!a.is_string()) {
        count("serve.errors.bad_request");
        return error_reply(
            req, error_value("bad_request", "",
                             "\"args\" must be P literals as strings"));
      }
      args.push_back(parse_value(a.as_string()));
    }

    interp::Value result;
    obs::MetricsRegistry run_metrics;
    Json degradations;
    std::string engine = "vm";
    if (entry->compiled != nullptr) {
      Session session(entry->compiled);
      session.set_budget(budget);
      result = has_fun ? session.run_vm(fun, args) : session.run_entry_vm();
      run_metrics = session.last_cost().metrics;
      if (!session.last_degradations().empty()) {
        Json::Array lines;
        for (const std::string& d : session.last_degradations()) {
          lines.emplace_back(d);
        }
        degradations = Json(std::move(lines));
      }
    } else {
      // Disk-rehydrated module: no source forms in this process, so the
      // run is VM-only, driven by the module's serialized signatures.
      ModuleRunner runner(entry->module);
      runner.set_budget(budget);
      result = has_fun ? runner.run(fun, args) : runner.run_entry();
      run_metrics = runner.last_cost().metrics;
      engine = "vm-module";
    }

    count("serve.eval.count");
    if (cache_hit) count("serve.eval.warm");
    count("serve.eval.wall_ns", elapsed_ns(start));

    Json::Object reply;
    if (req.has("id")) reply["id"] = req.get("id");
    reply["ok"] = true;
    reply["key"] = vm::hash_hex(key);
    reply["cached"] = cache_hit;
    reply["engine"] = engine;
    reply["result"] = interp::to_text(result);
    reply["metrics"] = metrics_object(run_metrics);
    if (!degradations.is_null()) reply["degradations"] = degradations;
    return Json(std::move(reply));
  } catch (const rt::RuntimeTrap& trap) {
    // The request exhausted ITS budget; the daemon is healthy and the
    // reply says exactly what tripped (docs/ROBUSTNESS.md trap table).
    count(std::string("serve.trap.") + trap.code());
    count("serve.errors.trap");
    Json::Object e;
    e["kind"] = "trap";
    e["code"] = trap.code();
    e["message"] = trap.what();
    e["site"] = trap.site();
    e["bytes_at_trip"] = trap.bytes_at_trip();
    e["steps_at_trip"] = trap.steps_at_trip();
    return error_reply(req, Json(std::move(e)));
  } catch (const SyntaxError& e) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "",
                                        std::string("bad argument literal: ") +
                                            e.what()));
  } catch (const TypeError& e) {
    count("serve.errors.bad_request");
    return error_reply(req, error_value("bad_request", "",
                                        std::string("bad argument literal: ") +
                                            e.what()));
  } catch (const Error& e) {
    count("serve.errors.runtime");
    return error_reply(req, error_value("runtime", "", e.what()));
  }
}

Json Server::do_metrics() {
  Json::Object reply;
  reply["ok"] = true;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    reply["metrics"] = metrics_object(metrics_);
  }
  reply["cache_entries"] = static_cast<std::uint64_t>(cache_.size());
  return Json(std::move(reply));
}

int Server::serve_stdio(std::istream& in, std::ostream& out) {
  std::string line;
  while (!stopping() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << "\n" << std::flush;
  }
  return 0;
}

#if !defined(_WIN32)

namespace {

/// write(2) until done; false on a closed/broken connection.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int Server::serve_tcp(const std::string& host, int port,
                      std::ostream& announce) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return 1;
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd);
    return 1;
  }
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  announce << "proteusd listening on " << ntohs(bound.sin_port) << "\n"
           << std::flush;

  // Connection queue + worker pool. Workers own one connection at a time
  // and call handle_line per request line (handle_line is thread-safe).
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> pending;
  auto worker = [this, &mu, &cv, &pending] {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || stopping(); });
        if (pending.empty()) return;
        fd = pending.front();
        pending.pop_front();
      }
      std::string buffer;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl = 0;
        bool closed = false;
        while ((nl = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, nl);
          buffer.erase(0, nl + 1);
          if (line.empty()) continue;
          if (!write_all(fd, handle_line(line) + "\n")) {
            closed = true;
            break;
          }
        }
        if (closed || stopping()) break;
      }
      ::close(fd);
      if (stopping()) cv.notify_all();
    }
  };
  const int n_workers = options_.workers > 0 ? options_.workers : 1;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) workers.emplace_back(worker);

  while (!stopping()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // re-check stop 5x/second
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(conn);
    }
    cv.notify_one();
  }

  ::close(listen_fd);
  cv.notify_all();
  for (std::thread& t : workers) t.join();
  {
    // Connections still queued at shutdown are closed unserved.
    std::lock_guard<std::mutex> lock(mu);
    for (int fd : pending) ::close(fd);
  }
  return 0;
}

#else  // _WIN32

int Server::serve_tcp(const std::string&, int, std::ostream&) {
  return 1;  // TCP transport is POSIX-only; use --stdio.
}

#endif

}  // namespace proteus::serve
