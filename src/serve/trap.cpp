#include "serve/trap.hpp"

namespace proteus::serve {

const char* serve_trap_code(ServeTrap t) noexcept {
  switch (t) {
    case ServeTrap::kOverload:
      return "S001";
    case ServeTrap::kIdleTimeout:
      return "S002";
    case ServeTrap::kIoTimeout:
      return "S003";
    case ServeTrap::kLineTooLong:
      return "S004";
    case ServeTrap::kDraining:
      return "S005";
    case ServeTrap::kInjectRead:
      return "S006";
    case ServeTrap::kInjectWrite:
      return "S007";
    case ServeTrap::kInjectStall:
      return "S008";
  }
  return "S???";
}

const char* serve_trap_reason(ServeTrap t) noexcept {
  switch (t) {
    case ServeTrap::kOverload:
      return "server over capacity: connection queue full";
    case ServeTrap::kIdleTimeout:
      return "connection idle past the idle timeout";
    case ServeTrap::kIoTimeout:
      return "connection I/O made no progress within the I/O timeout";
    case ServeTrap::kLineTooLong:
      return "request line exceeded the per-line byte bound";
    case ServeTrap::kDraining:
      return "server draining: connection retired";
    case ServeTrap::kInjectRead:
      return "injected socket-read fault fired";
    case ServeTrap::kInjectWrite:
      return "injected socket-write fault fired";
    case ServeTrap::kInjectStall:
      return "injected socket stall fired";
  }
  return "unknown serve trap";
}

const char* serve_trap_kind(ServeTrap t) noexcept {
  switch (t) {
    case ServeTrap::kOverload:
      return "overload";
    case ServeTrap::kIdleTimeout:
    case ServeTrap::kIoTimeout:
      return "timeout";
    case ServeTrap::kLineTooLong:
      return "bad_request";
    case ServeTrap::kDraining:
      return "draining";
    case ServeTrap::kInjectRead:
    case ServeTrap::kInjectWrite:
    case ServeTrap::kInjectStall:
      return "io";
  }
  return "io";
}

bool serve_trap_retryable(ServeTrap t) noexcept {
  return t == ServeTrap::kOverload || t == ServeTrap::kDraining;
}

}  // namespace proteus::serve
