// client.hpp — a small retrying NDJSON client for proteusd.
//
// One RetryingClient::call sends one request object to host:port and
// returns the reply object, retrying through exactly the failures the
// hardened server is allowed to inflict on a well-behaved client
// (docs/SERVING.md "Overload & lifecycle"):
//
//   * transport failures — refused connects, resets, EOF before a reply
//     (what an injected sock-read/sock-stall looks like from outside) —
//     retried after a bounded exponential backoff with deterministic
//     jitter;
//   * retryable S-frames — S001 (overload) and S005 (draining) — retried
//     after max(retry_after_ms from the frame, the computed backoff).
//
// Everything else (a parseable non-retryable error reply, S002–S004,
// attempts exhausted) is returned/failed to the caller: retrying a
// request the server called too slow or too large would recur verbatim.
//
// This is the client the chaos tests and tools/loadgen drive; it is
// deliberately synchronous and allocation-light, not a connection pool.
// POSIX-only, like serve_tcp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/json.hpp"

namespace proteus::serve {

struct RetryPolicy {
  /// Total tries (first attempt included). <=1 means no retries.
  int max_attempts = 5;
  /// First retry waits ~base, then ~2*base, ~4*base, ... capped at max.
  int base_backoff_ms = 10;
  int max_backoff_ms = 500;
  /// Per-attempt bound on connect + send + reply read.
  int io_timeout_ms = 5000;
  /// Seed for the deterministic jitter stream (tests pin it).
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
};

struct ClientStats {
  std::uint64_t attempts = 0;      ///< connects tried (>=1 per call)
  std::uint64_t busy_retries = 0;  ///< retries after an S001/S005 frame
  std::uint64_t io_retries = 0;    ///< retries after a transport failure
};

class RetryingClient {
 public:
  RetryingClient(std::string host, int port, RetryPolicy policy = {})
      : host_(std::move(host)), port_(port), policy_(policy) {}

  /// Sends `request` as one NDJSON line, returns the parsed reply line.
  /// nullopt (with *error filled) when every attempt failed. Replies
  /// with ok=false are RETURNED, not retried — except the retryable
  /// busy/draining frames, which retry up to the attempt budget and are
  /// returned only when it is exhausted.
  [[nodiscard]] std::optional<Json> call(const Json& request,
                                         std::string* error);

  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  /// One connect/send/read round trip. nullopt = transport failure.
  [[nodiscard]] std::optional<Json> attempt(const std::string& line,
                                            std::string* error);
  /// Backoff before retry number `n` (1-based), jittered: in
  /// [half, full] of min(base * 2^(n-1), max).
  [[nodiscard]] int backoff_ms(int n);

  std::string host_;
  int port_;
  RetryPolicy policy_;
  ClientStats stats_;
  std::uint64_t jitter_state_ = 0;
};

}  // namespace proteus::serve
