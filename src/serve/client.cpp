#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace proteus::serve {

#if !defined(_WIN32)

namespace {

/// True for the busy/draining frames a client should retry (the server
/// stamps retry_after_ms into exactly these; serve/trap.cpp).
bool retryable_reply(const Json& reply, int* retry_after_ms) {
  if (reply.get("ok").as_bool(true)) return false;
  const Json& error = reply.get("error");
  const std::string& code = error.get("code").as_string();
  if (code != "S001" && code != "S005") return false;
  *retry_after_ms = static_cast<int>(error.get("retry_after_ms").as_int(0));
  return true;
}

/// Connects to 127-style host:port with a poll-guarded timeout;
/// -1 on failure.
int connect_to(const std::string& host, int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  // Bound every subsequent read/write on the socket.
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<decltype(tv.tv_usec)>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  return fd;
}

}  // namespace

std::optional<Json> RetryingClient::attempt(const std::string& line,
                                            std::string* error) {
  const int fd = connect_to(host_, port_, policy_.io_timeout_ms);
  if (fd < 0) {
    *error = "connect to " + host_ + ":" + std::to_string(port_) + " failed";
    return std::nullopt;
  }
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      *error = "send failed";
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string reply;
  char chunk[4096];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      *error = "connection closed before a reply";
      return std::nullopt;
    }
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  reply.erase(reply.find('\n'));
  std::string parse_error;
  std::optional<Json> parsed = parse_json(reply, &parse_error);
  if (!parsed.has_value()) {
    *error = "unparseable reply: " + parse_error;
    return std::nullopt;
  }
  return parsed;
}

int RetryingClient::backoff_ms(int n) {
  std::int64_t full = policy_.base_backoff_ms;
  for (int i = 1; i < n && full < policy_.max_backoff_ms; ++i) full *= 2;
  full = std::clamp<std::int64_t>(full, 1, policy_.max_backoff_ms);
  // xorshift64* jitter: deterministic in the seed, so a test run's retry
  // schedule reproduces exactly; spread over [full/2, full] to decorrelate
  // a thundering herd without ever waiting longer than the cap.
  if (jitter_state_ == 0) {
    jitter_state_ = policy_.jitter_seed != 0 ? policy_.jitter_seed : 1;
  }
  std::uint64_t x = jitter_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  jitter_state_ = x;
  const std::int64_t half = full / 2;
  return static_cast<int>(
      half + static_cast<std::int64_t>((x * 0x2545F4914F6CDD1DULL) %
                                       static_cast<std::uint64_t>(full - half +
                                                                  1)));
}

std::optional<Json> RetryingClient::call(const Json& request,
                                         std::string* error) {
  const std::string line = request.dump() + "\n";
  const int attempts = std::max(policy_.max_attempts, 1);
  std::optional<Json> last_reply;
  std::string last_error = "no attempts made";
  for (int n = 1; n <= attempts; ++n) {
    ++stats_.attempts;
    std::optional<Json> reply = attempt(line, &last_error);
    if (reply.has_value()) {
      int retry_after_ms = 0;
      if (!retryable_reply(*reply, &retry_after_ms)) return reply;
      last_reply = std::move(reply);
      if (n == attempts) break;  // budget exhausted: return the busy frame
      ++stats_.busy_retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max(retry_after_ms, backoff_ms(n))));
      continue;
    }
    last_reply.reset();
    if (n == attempts) break;
    ++stats_.io_retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(n)));
  }
  if (last_reply.has_value()) return last_reply;  // the final busy frame
  *error = last_error + " (after " + std::to_string(attempts) + " attempts)";
  return std::nullopt;
}

#else  // _WIN32

std::optional<Json> RetryingClient::attempt(const std::string&, std::string*) {
  return std::nullopt;
}
int RetryingClient::backoff_ms(int) { return 0; }
std::optional<Json> RetryingClient::call(const Json&, std::string* error) {
  *error = "RetryingClient is POSIX-only, like serve_tcp";
  return std::nullopt;
}

#endif

}  // namespace proteus::serve
