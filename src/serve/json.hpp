// json.hpp — the minimal JSON value / parser / writer of the serving
// layer (docs/SERVING.md).
//
// proteusd speaks newline-delimited JSON; requests arrive over a socket
// from arbitrary clients, so the parser treats its input exactly like the
// module loader treats module images: bounds-checked, depth-limited,
// never throwing — a malformed request becomes a structured error reply,
// not a crash. Only what the protocol needs is implemented (no comments,
// no trailing commas, numbers as int64 when they look integral and double
// otherwise); the writer always emits valid, escaped, single-line JSON
// suitable for NDJSON framing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace proteus::serve {

/// A parsed JSON value. Regular value type.
class Json {
 public:
  using Array = std::vector<Json>;
  /// std::map keeps reply key order deterministic for golden tests.
  using Object = std::map<std::string, Json>;

  Json() : node_(nullptr) {}
  Json(std::nullptr_t) : node_(nullptr) {}                    // NOLINT
  Json(bool b) : node_(b) {}                                  // NOLINT
  Json(std::int64_t n) : node_(n) {}                          // NOLINT
  Json(int n) : node_(static_cast<std::int64_t>(n)) {}        // NOLINT
  Json(std::uint64_t n) : node_(static_cast<std::int64_t>(n)) {}  // NOLINT
  Json(double d) : node_(d) {}                                // NOLINT
  Json(std::string s) : node_(std::move(s)) {}                // NOLINT
  Json(const char* s) : node_(std::string(s)) {}              // NOLINT
  Json(Array a) : node_(std::move(a)) {}                      // NOLINT
  Json(Object o) : node_(std::move(o)) {}                     // NOLINT

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(node_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(node_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(node_);
  }
  [[nodiscard]] bool is_number() const {
    return is_int() || std::holds_alternative<double>(node_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(node_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(node_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(node_);
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    const bool* b = std::get_if<bool>(&node_);
    return b != nullptr ? *b : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    if (const std::int64_t* i = std::get_if<std::int64_t>(&node_)) return *i;
    if (const double* d = std::get_if<double>(&node_)) {
      return static_cast<std::int64_t>(*d);
    }
    return fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    if (const double* d = std::get_if<double>(&node_)) return *d;
    if (const std::int64_t* i = std::get_if<std::int64_t>(&node_)) {
      return static_cast<double>(*i);
    }
    return fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string kEmpty;
    const std::string* s = std::get_if<std::string>(&node_);
    return s != nullptr ? *s : kEmpty;
  }
  [[nodiscard]] const Array& as_array() const {
    static const Array kEmpty;
    const Array* a = std::get_if<Array>(&node_);
    return a != nullptr ? *a : kEmpty;
  }
  [[nodiscard]] const Object& as_object() const {
    static const Object kEmpty;
    const Object* o = std::get_if<Object>(&node_);
    return o != nullptr ? *o : kEmpty;
  }

  /// Mutable object access for in-place edits (stamping reply metadata
  /// without copying the whole object). nullptr for non-objects.
  [[nodiscard]] Object* if_object() { return std::get_if<Object>(&node_); }

  /// Member `key` of an object (null Json for non-objects / absent keys).
  [[nodiscard]] const Json& get(std::string_view key) const;

  /// true when this is an object that has `key`.
  [[nodiscard]] bool has(std::string_view key) const;

  /// Compact single-line rendering (NDJSON-safe: no raw newlines ever).
  [[nodiscard]] std::string dump() const;

 private:
  using Node =
      std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
                   Array, Object>;
  Node node_;
};

/// Parses one JSON document. Returns std::nullopt on any syntax error,
/// depth overflow, or trailing garbage, with a one-line reason in *error
/// (when non-null). Never throws.
[[nodiscard]] std::optional<Json> parse_json(std::string_view text,
                                             std::string* error = nullptr);

}  // namespace proteus::serve
