// governor.hpp — the execution governor: resource budgets, cooperative
// cancellation, and the charge/poll points every engine shares.
//
// Budgets are a *per-thread* service: GovernorScope installs an
// ExecBudget on the constructing thread (a stack of scopes, so nesting
// replaces and restores limits exactly), and every charge/poll issued by
// that thread is checked against it. This is what makes the budget a
// multi-tenant isolation boundary — a serving worker thread can govern
// its request without another worker's limits bleeding into it (see
// src/serve/ and docs/SERVING.md). Process-wide facts stay global:
//
//   * resident bytes — Vec<T> charges its heap bytes on construction /
//     resize and releases them on destruction; live vector memory is a
//     property of the process, so `resident bytes` is one global counter
//     (a budget's max_resident_bytes caps the *process* footprint
//     observed while that thread allocates).
//   * cooperative cancellation and the fault-injection plans — both are
//     process-global switches (docs/ROBUSTNESS.md).
//
// Charge/poll points are unchanged from the global-governor design:
//
//   * Vec<T> charges bytes, VectorStats::record() charges element work,
//     and engines call poll() at their dispatch points (VM per
//     instruction, tree evaluators per node, fused kernels per block).
//   * Every charge and poll runs on the thread driving the evaluation —
//     the OpenMP kernels record their work *outside* their parallel
//     regions — so the per-thread budget observes all of a request's
//     work even on the parallel backend.
//
// Fast-path cost with no budget installed on this thread, no cancellation
// requested, and no faults armed is one thread-local load, one relaxed
// atomic load, and a predictable branch (see bench_rt_overhead).
// Violations throw rt::RuntimeTrap — except inside an OpenMP parallel
// region, where throwing would terminate the process; there the trip is
// recorded and re-raised at the next serial poll point (cooperative
// deferral).
#pragma once

#include <atomic>
#include <cstdint>

#include "rt/trap.hpp"

namespace proteus::rt {

/// Default user-level call depth ceiling (always enforced; flattened
/// recursion halves frames, so legitimate depth is O(log data)).
inline constexpr int kDefaultMaxCallDepth = 8000;

/// Default structural-recursion ceiling for the parser, printer, and the
/// evaluators' per-expression descent. Structural recursion burns far
/// more C++ stack per level than a user-level call (several parser frames
/// per nesting level), so it gets a tighter always-on default — deeply
/// nested inputs trap cleanly instead of overflowing the C++ stack.
inline constexpr int kDefaultMaxNesting = 2000;

/// Resource budget enforced on a region of execution. Zero means
/// "unlimited" for every field (max_depth 0 = the default limits above).
struct ExecBudget {
  std::uint64_t max_resident_bytes = 0;  ///< live vl vector bytes (T001)
  std::uint64_t max_steps = 0;           ///< element-work steps (T002)
  int max_depth = 0;                     ///< call/nesting depth (T003)
  std::uint64_t deadline_ms = 0;         ///< wall-clock deadline (T004)

  [[nodiscard]] bool limits_anything() const noexcept {
    return max_resident_bytes != 0 || max_steps != 0 || max_depth != 0 ||
           deadline_ms != 0;
  }
};

namespace detail {

/// The budget installed on one thread by one GovernorScope. Lives inside
/// the scope object (no heap); `previous` restores the enclosing scope.
/// Touched only by the owning thread: the kernels charge work before /
/// after their parallel regions, never inside them.
struct GovernorState {
  std::uint64_t max_bytes = 0;
  std::uint64_t max_steps = 0;
  int max_depth = 0;
  std::int64_t deadline_ns = 0;  ///< steady-clock epoch ns; 0 = none
  std::uint64_t steps = 0;       ///< element work charged in this scope
  GovernorState* previous = nullptr;
};

/// The innermost budget of the current thread (null: ungoverned thread).
extern thread_local GovernorState* t_state;

/// `g_active` gates the process-global slow-path causes: cancellation
/// pending, faults armed, or a trip deferred from a parallel region.
extern std::atomic<bool> g_active;
extern std::atomic<std::uint64_t> g_resident;
extern std::atomic<std::uint64_t> g_peak;  // resident-byte high watermark
extern std::atomic<int> g_tripped;  // deferred Trap code; 0 = none

void charge_bytes_slow(std::uint64_t bytes);
void charge_work_slow(std::uint64_t elements);
void poll_slow(const char* site, std::int64_t pc);
void recompute_active() noexcept;

}  // namespace detail

/// Charges `bytes` of freshly allocated vector memory against the
/// resident-byte budget (and the injected-allocation fault plan). On a
/// serial-context violation the charge is rolled back and RuntimeTrap
/// thrown — the allocation is abandoned by the unwind.
inline void charge_bytes(std::uint64_t bytes) {
  if (bytes == 0) return;
  detail::g_resident.fetch_add(bytes, std::memory_order_relaxed);
  if (detail::t_state == nullptr &&
      !detail::g_active.load(std::memory_order_relaxed)) {
    return;
  }
  detail::charge_bytes_slow(bytes);
}

/// Releases previously charged bytes (vector destruction/shrink).
inline void release_bytes(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  detail::g_resident.fetch_sub(bytes, std::memory_order_relaxed);
}

/// Charges element work issued by one vl kernel against the step budget
/// (and the injected-kernel fault plan).
inline void charge_work(std::uint64_t elements) {
  if (detail::t_state == nullptr &&
      !detail::g_active.load(std::memory_order_relaxed)) {
    return;
  }
  detail::charge_work_slow(elements);
}

/// Cooperative check point: observes cancellation, the deadline, and
/// trips deferred from parallel regions. Engines pass their dispatch
/// site; the VM also passes the current pc for trap attribution.
inline void poll(const char* site, std::int64_t pc = -1) {
  if (detail::t_state == nullptr &&
      !detail::g_active.load(std::memory_order_relaxed)) {
    return;
  }
  detail::poll_slow(site, pc);
}

/// True while a deferred trip is pending (set inside parallel regions
/// where throwing is impossible); blockwise kernels use it to skip
/// remaining work until a serial poll can raise the trap.
[[nodiscard]] inline bool tripped() noexcept {
  return detail::g_tripped.load(std::memory_order_relaxed) != 0;
}

/// Live vl vector bytes currently charged (process-wide, always counted).
[[nodiscard]] std::uint64_t resident_bytes() noexcept;

/// High watermark of resident_bytes() observed at charge points since the
/// last reset. Only advanced on the governed slow path, so it is exact
/// under a budget scope and merely advisory on ungoverned threads — which
/// is what the memory-plan benches need (bench_vm_memplan runs governed).
[[nodiscard]] std::uint64_t peak_resident_bytes() noexcept;
void reset_peak_resident_bytes() noexcept;

/// The calling thread's resident-byte limit (its innermost budget's
/// max_resident_bytes; 0 = unlimited/ungoverned). Plan-based admission
/// control compares a module's static peak bound against this.
[[nodiscard]] std::uint64_t max_resident_limit() noexcept;

/// Element-work steps charged since this thread's innermost budget scope
/// was installed (0 on an ungoverned thread).
[[nodiscard]] std::uint64_t steps() noexcept;

/// Requests cooperative cancellation: the next serial poll() anywhere in
/// the process raises T005. Sticky until clear_cancel().
void request_cancel() noexcept;
void clear_cancel() noexcept;
[[nodiscard]] bool cancel_requested() noexcept;

/// Current user-level call depth ceiling (the calling thread's budget
/// max_depth, or the default) and structural-recursion ceiling (min of
/// budget max_depth and kDefaultMaxNesting).
[[nodiscard]] int depth_limit() noexcept;
[[nodiscard]] int nesting_limit() noexcept;

/// Constructs and throws a RuntimeTrap at the given site, capturing the
/// governor's byte/step counters at the moment of the trip.
[[noreturn]] void raise(Trap trap, const std::string& detail,
                        const char* site, std::int64_t pc = -1);

/// RAII guard bounding one level of structural recursion against
/// nesting_limit(); used by the parser, printer, and both tree
/// evaluators. Throws T003 when the limit is exceeded.
class NestingGuard {
 public:
  NestingGuard(int* depth, const char* site) : depth_(depth) {
    if (++*depth_ > nesting_limit()) {
      --*depth_;
      raise(Trap::kDepth,
            std::string("expression nesting limit exceeded in ") + site,
            site);
    }
  }
  ~NestingGuard() { --*depth_; }
  NestingGuard(const NestingGuard&) = delete;
  NestingGuard& operator=(const NestingGuard&) = delete;

 private:
  int* depth_;
};

/// RAII scope installing a budget on the calling thread: pushes a fresh
/// per-thread budget state (step counter at 0, deadline armed) and
/// restores the enclosing scope on exit. Resident bytes are NOT reset —
/// they track live allocations, which outlive any one scope. Each scope
/// also clears (and on exit restores) any parallel-region trip deferral,
/// so a stale deferral cannot leak into an unrelated execution.
class GovernorScope {
 public:
  explicit GovernorScope(const ExecBudget& budget);
  ~GovernorScope();
  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  detail::GovernorState state_;
  int previous_tripped_;
};

}  // namespace proteus::rt
