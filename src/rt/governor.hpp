// governor.hpp — the execution governor: resource budgets, cooperative
// cancellation, and the charge/poll points every engine shares.
//
// The governor is a process-global service (like vl::backend() and
// obs::tracer()) charged at the vl:: layer, so the serial, OpenMP, and
// fused execution paths are covered by the same accounting:
//
//   * Vec<T> charges its heap bytes on construction/resize and releases
//     them on destruction -> `resident bytes` tracks live vector memory.
//   * VectorStats::record() charges element work -> `steps` tracks the
//     machine-independent work issued since the budget was installed.
//   * Engines call poll() at their dispatch points (VM per instruction,
//     tree evaluators per node, fused kernels per block) to observe
//     cancellation, deadlines, and trips deferred from parallel regions.
//
// Fast-path cost with no budget installed, no cancellation requested, and
// no faults armed is one relaxed atomic load and a predictable branch
// (see bench_rt_overhead). Violations throw rt::RuntimeTrap — except
// inside an OpenMP parallel region, where throwing would terminate the
// process; there the trip is recorded and re-raised at the next serial
// poll point (cooperative deferral).
#pragma once

#include <atomic>
#include <cstdint>

#include "rt/trap.hpp"

namespace proteus::rt {

/// Default user-level call depth ceiling (always enforced; flattened
/// recursion halves frames, so legitimate depth is O(log data)).
inline constexpr int kDefaultMaxCallDepth = 8000;

/// Default structural-recursion ceiling for the parser, printer, and the
/// evaluators' per-expression descent. Structural recursion burns far
/// more C++ stack per level than a user-level call (several parser frames
/// per nesting level), so it gets a tighter always-on default — deeply
/// nested inputs trap cleanly instead of overflowing the C++ stack.
inline constexpr int kDefaultMaxNesting = 2000;

/// Resource budget enforced on a region of execution. Zero means
/// "unlimited" for every field (max_depth 0 = the default limits above).
struct ExecBudget {
  std::uint64_t max_resident_bytes = 0;  ///< live vl vector bytes (T001)
  std::uint64_t max_steps = 0;           ///< element-work steps (T002)
  int max_depth = 0;                     ///< call/nesting depth (T003)
  std::uint64_t deadline_ms = 0;         ///< wall-clock deadline (T004)

  [[nodiscard]] bool limits_anything() const noexcept {
    return max_resident_bytes != 0 || max_steps != 0 || max_depth != 0 ||
           deadline_ms != 0;
  }
};

namespace detail {
// `g_active` is the single fast-path gate: true while a budget is
// installed, a cancellation is pending, or faults are armed.
extern std::atomic<bool> g_active;
extern std::atomic<std::uint64_t> g_resident;
extern std::atomic<std::uint64_t> g_steps;
extern std::atomic<int> g_tripped;  // deferred Trap code; 0 = none

void charge_bytes_slow(std::uint64_t bytes);
void charge_work_slow(std::uint64_t elements);
void poll_slow(const char* site, std::int64_t pc);
void recompute_active() noexcept;
}  // namespace detail

/// Charges `bytes` of freshly allocated vector memory against the
/// resident-byte budget (and the injected-allocation fault plan). On a
/// serial-context violation the charge is rolled back and RuntimeTrap
/// thrown — the allocation is abandoned by the unwind.
inline void charge_bytes(std::uint64_t bytes) {
  if (bytes == 0) return;
  detail::g_resident.fetch_add(bytes, std::memory_order_relaxed);
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  detail::charge_bytes_slow(bytes);
}

/// Releases previously charged bytes (vector destruction/shrink).
inline void release_bytes(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  detail::g_resident.fetch_sub(bytes, std::memory_order_relaxed);
}

/// Charges element work issued by one vl kernel against the step budget
/// (and the injected-kernel fault plan).
inline void charge_work(std::uint64_t elements) {
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  detail::charge_work_slow(elements);
}

/// Cooperative check point: observes cancellation, the deadline, and
/// trips deferred from parallel regions. Engines pass their dispatch
/// site; the VM also passes the current pc for trap attribution.
inline void poll(const char* site, std::int64_t pc = -1) {
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  detail::poll_slow(site, pc);
}

/// True while a deferred trip is pending (set inside parallel regions
/// where throwing is impossible); blockwise kernels use it to skip
/// remaining work until a serial poll can raise the trap.
[[nodiscard]] inline bool tripped() noexcept {
  return detail::g_tripped.load(std::memory_order_relaxed) != 0;
}

/// Live vl vector bytes currently charged (process-wide, always counted).
[[nodiscard]] std::uint64_t resident_bytes() noexcept;

/// Element-work steps charged since the current budget was installed.
[[nodiscard]] std::uint64_t steps() noexcept;

/// Requests cooperative cancellation: the next serial poll() anywhere in
/// the process raises T005. Sticky until clear_cancel().
void request_cancel() noexcept;
void clear_cancel() noexcept;
[[nodiscard]] bool cancel_requested() noexcept;

/// Current user-level call depth ceiling (budget max_depth, or the
/// default) and structural-recursion ceiling (min of budget max_depth
/// and kDefaultMaxNesting).
[[nodiscard]] int depth_limit() noexcept;
[[nodiscard]] int nesting_limit() noexcept;

/// Constructs and throws a RuntimeTrap at the given site, capturing the
/// governor's byte/step counters at the moment of the trip.
[[noreturn]] void raise(Trap trap, const std::string& detail,
                        const char* site, std::int64_t pc = -1);

/// RAII guard bounding one level of structural recursion against
/// nesting_limit(); used by the parser, printer, and both tree
/// evaluators. Throws T003 when the limit is exceeded.
class NestingGuard {
 public:
  NestingGuard(int* depth, const char* site) : depth_(depth) {
    if (++*depth_ > nesting_limit()) {
      --*depth_;
      raise(Trap::kDepth,
            std::string("expression nesting limit exceeded in ") + site,
            site);
    }
  }
  ~NestingGuard() { --*depth_; }
  NestingGuard(const NestingGuard&) = delete;
  NestingGuard& operator=(const NestingGuard&) = delete;

 private:
  int* depth_;
};

/// RAII scope installing a budget: resets the step counter and any
/// deferred trip, arms the deadline, and restores the previous governor
/// state on exit. Resident bytes are NOT reset — they track live
/// allocations, which outlive any one scope.
class GovernorScope {
 public:
  explicit GovernorScope(const ExecBudget& budget);
  ~GovernorScope();
  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ExecBudget previous_;
  std::uint64_t previous_steps_;
  std::int64_t previous_deadline_;
  int previous_tripped_;
};

}  // namespace proteus::rt
