#include "rt/fault.hpp"

#include <atomic>
#include <cstdlib>

#include "rt/governor.hpp"

namespace proteus::rt {

namespace {

// Live countdowns. Signed so a racing extra decrement past zero (two
// threads observing the same armed count) is harmless: only the exact
// transition 1 -> 0 fires.
std::atomic<std::int64_t> g_alloc{0};
std::atomic<std::int64_t> g_kernel{0};
std::atomic<std::int64_t> g_opt{0};
std::atomic<std::int64_t> g_sock_read{0};
std::atomic<std::int64_t> g_sock_write{0};
std::atomic<std::int64_t> g_sock_stall{0};

bool countdown(std::atomic<std::int64_t>& c) noexcept {
  if (c.load(std::memory_order_relaxed) <= 0) return false;
  return c.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

std::uint64_t remaining(const std::atomic<std::int64_t>& c) noexcept {
  const std::int64_t v = c.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw Error("bad fault plan '" + spec + "': " + why +
              " (expected alloc:N,kernel:M,opt:K,sock-read:R,sock-write:W,"
              "sock-stall:S)");
}

/// PROTEUS_FAULT in the environment arms a plan for the whole process —
/// the hook the CI fault-injection matrix rotates seeds through. Parsed
/// at static initialization like PROTEUS_BACKEND; malformed values are
/// ignored rather than terminating every binary that links rt.
[[maybe_unused]] const bool g_env_armed = [] {
  const char* env = std::getenv("PROTEUS_FAULT");
  if (env == nullptr || *env == '\0') return false;
  try {
    arm_faults(parse_fault_plan(env));
  } catch (const Error&) {
    return false;
  }
  return true;
}();

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string part = spec.substr(pos, end - pos);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) bad_spec(spec, "missing ':' in '" + part + "'");
    const std::string site = part.substr(0, colon);
    const std::string count = part.substr(colon + 1);
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      bad_spec(spec, "bad count '" + count + "'");
    }
    const std::uint64_t n = std::strtoull(count.c_str(), nullptr, 10);
    if (site == "alloc") {
      plan.alloc = n;
    } else if (site == "kernel") {
      plan.kernel = n;
    } else if (site == "opt") {
      plan.opt = n;
    } else if (site == "sock-read") {
      plan.sock_read = n;
    } else if (site == "sock-write") {
      plan.sock_write = n;
    } else if (site == "sock-stall") {
      plan.sock_stall = n;
    } else {
      bad_spec(spec, "unknown site '" + site + "'");
    }
    pos = end + 1;
  }
  return plan;
}

void arm_faults(const FaultPlan& plan) noexcept {
  g_alloc.store(static_cast<std::int64_t>(plan.alloc),
                std::memory_order_relaxed);
  g_kernel.store(static_cast<std::int64_t>(plan.kernel),
                 std::memory_order_relaxed);
  g_opt.store(static_cast<std::int64_t>(plan.opt), std::memory_order_relaxed);
  g_sock_read.store(static_cast<std::int64_t>(plan.sock_read),
                    std::memory_order_relaxed);
  g_sock_write.store(static_cast<std::int64_t>(plan.sock_write),
                     std::memory_order_relaxed);
  g_sock_stall.store(static_cast<std::int64_t>(plan.sock_stall),
                     std::memory_order_relaxed);
  detail::recompute_active();
}

void disarm_faults() noexcept { arm_faults(FaultPlan{}); }

bool faults_armed() noexcept {
  return g_alloc.load(std::memory_order_relaxed) > 0 ||
         g_kernel.load(std::memory_order_relaxed) > 0 ||
         g_opt.load(std::memory_order_relaxed) > 0 ||
         g_sock_read.load(std::memory_order_relaxed) > 0 ||
         g_sock_write.load(std::memory_order_relaxed) > 0 ||
         g_sock_stall.load(std::memory_order_relaxed) > 0;
}

FaultPlan pending_faults() noexcept {
  return FaultPlan{remaining(g_alloc),      remaining(g_kernel),
                   remaining(g_opt),        remaining(g_sock_read),
                   remaining(g_sock_write), remaining(g_sock_stall)};
}

void maybe_fail_opt() {
  if (countdown(g_opt)) {
    detail::recompute_active();
    raise(Trap::kInjectOpt, trap_reason(Trap::kInjectOpt),
          "pipeline.optimize-vcode");
  }
}

namespace detail {

bool fire_alloc() noexcept { return countdown(g_alloc); }
bool fire_kernel() noexcept { return countdown(g_kernel); }

/// The sock-* sites fire outside the governor's trip machinery (the
/// serving transport maps them to S-code lifecycle events, not
/// RuntimeTrap), so they relax g_active themselves once drained.
bool fire_sock_read() noexcept {
  if (!countdown(g_sock_read)) return false;
  recompute_active();
  return true;
}
bool fire_sock_write() noexcept {
  if (!countdown(g_sock_write)) return false;
  recompute_active();
  return true;
}
bool fire_sock_stall() noexcept {
  if (!countdown(g_sock_stall)) return false;
  recompute_active();
  return true;
}

}  // namespace detail

}  // namespace proteus::rt
