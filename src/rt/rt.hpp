// rt.hpp — umbrella header for the runtime governor subsystem:
// trap taxonomy (trap.hpp), execution budgets + cancellation
// (governor.hpp), and deterministic fault injection (fault.hpp).
// See docs/ROBUSTNESS.md.
#pragma once

#include "rt/fault.hpp"
#include "rt/governor.hpp"
#include "rt/trap.hpp"
