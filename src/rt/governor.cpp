#include "rt/governor.hpp"

#include <algorithm>
#include <chrono>

#include "rt/fault.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace proteus::rt {

namespace detail {

thread_local GovernorState* t_state = nullptr;

std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_resident{0};
std::atomic<std::uint64_t> g_peak{0};
std::atomic<int> g_tripped{0};

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_cancel{false};

/// The deadline costs a clock read, so poll_slow only consults it every
/// kDeadlineStride slow polls (per thread). At VM dispatch rates that is
/// still sub-millisecond detection latency.
constexpr int kDeadlineStride = 64;

bool in_parallel_region() noexcept {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Records a trip for later re-raising (first trap wins).
void defer_trip(Trap t) noexcept {
  int expected = 0;
  detail::g_tripped.compare_exchange_strong(expected, static_cast<int>(t),
                                            std::memory_order_relaxed);
}

/// Raises the trap in serial context; defers it inside a parallel region
/// (throwing across an OpenMP region would terminate the process).
/// `rollback_bytes` undoes a just-made resident charge on the throwing
/// path, where the unwind abandons the allocation.
void trip(Trap t, const std::string& detail_msg, const char* site,
          std::uint64_t rollback_bytes, std::int64_t pc = -1) {
  if (in_parallel_region()) {
    defer_trip(t);
    detail::recompute_active();  // a pending trip keeps the fast paths hot
    return;
  }
  if (rollback_bytes != 0) release_bytes(rollback_bytes);
  raise(t, detail_msg, site, pc);
}

}  // namespace

namespace detail {

void recompute_active() noexcept {
  // Per-thread budgets are gated by t_state at the inline fast paths;
  // g_active covers only the process-global slow-path causes.
  g_active.store(g_cancel.load(std::memory_order_relaxed) ||
                     g_tripped.load(std::memory_order_relaxed) != 0 ||
                     faults_armed(),
                 std::memory_order_relaxed);
}

void charge_bytes_slow(std::uint64_t bytes) {
  if (fire_alloc()) {
    recompute_active();  // the one-shot countdown may just have drained
    trip(Trap::kInjectAlloc, trap_reason(Trap::kInjectAlloc), "vl.alloc",
         bytes);
    return;  // deferred inside a parallel region: the allocation proceeds
  }
  // Advance the resident high watermark (exact on governed threads; the
  // inline fast path skips it, so ungoverned allocation is not observed).
  const std::uint64_t cur = g_resident.load(std::memory_order_relaxed);
  std::uint64_t prev = g_peak.load(std::memory_order_relaxed);
  while (cur > prev && !g_peak.compare_exchange_weak(
                           prev, cur, std::memory_order_relaxed)) {
  }
  const GovernorState* st = t_state;
  if (st == nullptr) return;
  if (st->max_bytes != 0 &&
      g_resident.load(std::memory_order_relaxed) > st->max_bytes) {
    trip(Trap::kMemory, trap_reason(Trap::kMemory), "vl.alloc", bytes);
  }
}

void charge_work_slow(std::uint64_t elements) {
  if (fire_kernel()) {
    recompute_active();
    trip(Trap::kInjectKernel, trap_reason(Trap::kInjectKernel), "vl.kernel",
         0);
    return;
  }
  GovernorState* st = t_state;
  if (st == nullptr) return;
  st->steps += elements;
  if (st->max_steps != 0 && st->steps > st->max_steps) {
    trip(Trap::kSteps, trap_reason(Trap::kSteps), "vl.kernel", 0);
  }
}

void poll_slow(const char* site, std::int64_t pc) {
  if (in_parallel_region()) return;  // serial polls re-raise deferrals
  const int deferred = g_tripped.exchange(0, std::memory_order_relaxed);
  if (deferred != 0) {
    recompute_active();
    const Trap t = static_cast<Trap>(deferred);
    raise(t, trap_reason(t), site, pc);
  }
  if (g_cancel.load(std::memory_order_relaxed)) {
    raise(Trap::kCancelled, trap_reason(Trap::kCancelled), site, pc);
  }
  const GovernorState* st = t_state;
  if (st != nullptr && st->deadline_ns != 0) {
    thread_local int countdown = 0;
    if (--countdown <= 0) {
      countdown = kDeadlineStride;
      if (now_ns() > st->deadline_ns) {
        raise(Trap::kDeadline, trap_reason(Trap::kDeadline), site, pc);
      }
    }
  }
}

}  // namespace detail

std::uint64_t resident_bytes() noexcept {
  return detail::g_resident.load(std::memory_order_relaxed);
}

std::uint64_t peak_resident_bytes() noexcept {
  return detail::g_peak.load(std::memory_order_relaxed);
}

void reset_peak_resident_bytes() noexcept {
  detail::g_peak.store(resident_bytes(), std::memory_order_relaxed);
}

std::uint64_t max_resident_limit() noexcept {
  const detail::GovernorState* st = detail::t_state;
  return st != nullptr ? st->max_bytes : 0;
}

std::uint64_t steps() noexcept {
  const detail::GovernorState* st = detail::t_state;
  return st != nullptr ? st->steps : 0;
}

void request_cancel() noexcept {
  g_cancel.store(true, std::memory_order_relaxed);
  detail::recompute_active();
}

void clear_cancel() noexcept {
  g_cancel.store(false, std::memory_order_relaxed);
  detail::recompute_active();
}

bool cancel_requested() noexcept {
  return g_cancel.load(std::memory_order_relaxed);
}

int depth_limit() noexcept {
  const detail::GovernorState* st = detail::t_state;
  const int d = st != nullptr ? st->max_depth : 0;
  return d > 0 ? d : kDefaultMaxCallDepth;
}

int nesting_limit() noexcept {
  const detail::GovernorState* st = detail::t_state;
  const int d = st != nullptr ? st->max_depth : 0;
  return d > 0 ? std::min(d, kDefaultMaxNesting) : kDefaultMaxNesting;
}

void raise(Trap trap, const std::string& detail_msg, const char* site,
           std::int64_t pc) {
  throw RuntimeTrap(trap, detail_msg, site, resident_bytes(), steps(), pc);
}

GovernorScope::GovernorScope(const ExecBudget& budget)
    : previous_tripped_(
          detail::g_tripped.load(std::memory_order_relaxed)) {
  state_.max_bytes = budget.max_resident_bytes;
  state_.max_steps = budget.max_steps;
  state_.max_depth = budget.max_depth;
  state_.deadline_ns =
      budget.deadline_ms != 0
          ? now_ns() +
                static_cast<std::int64_t>(budget.deadline_ms) * 1'000'000
          : 0;
  state_.previous = detail::t_state;
  detail::t_state = &state_;
  detail::g_tripped.store(0, std::memory_order_relaxed);
  detail::recompute_active();
}

GovernorScope::~GovernorScope() {
  detail::t_state = state_.previous;
  detail::g_tripped.store(previous_tripped_, std::memory_order_relaxed);
  detail::recompute_active();
}

}  // namespace proteus::rt
