#include "rt/governor.hpp"

#include <algorithm>
#include <chrono>

#include "rt/fault.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace proteus::rt {

namespace detail {

std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_resident{0};
std::atomic<std::uint64_t> g_steps{0};
std::atomic<int> g_tripped{0};

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

// Installed budget limits (0 = unlimited). Written only by GovernorScope
// and the cancel API; read (relaxed) from any thread at the charge/poll
// fast paths.
std::atomic<bool> g_budget_installed{false};
std::atomic<std::uint64_t> g_max_bytes{0};
std::atomic<std::uint64_t> g_max_steps{0};
std::atomic<int> g_max_depth{0};
std::atomic<std::int64_t> g_deadline_ns{0};  // Clock epoch ns; 0 = none
std::atomic<bool> g_cancel{false};

/// The deadline costs a clock read, so poll_slow only consults it every
/// kDeadlineStride slow polls (per thread). At VM dispatch rates that is
/// still sub-millisecond detection latency.
constexpr int kDeadlineStride = 64;

bool in_parallel_region() noexcept {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Records a trip for later re-raising (first trap wins).
void defer_trip(Trap t) noexcept {
  int expected = 0;
  detail::g_tripped.compare_exchange_strong(expected, static_cast<int>(t),
                                            std::memory_order_relaxed);
}

/// Raises the trap in serial context; defers it inside a parallel region
/// (throwing across an OpenMP region would terminate the process).
/// `rollback_bytes` undoes a just-made resident charge on the throwing
/// path, where the unwind abandons the allocation.
void trip(Trap t, const std::string& detail_msg, const char* site,
          std::uint64_t rollback_bytes, std::int64_t pc = -1) {
  if (in_parallel_region()) {
    defer_trip(t);
    detail::recompute_active();  // a pending trip keeps the fast paths hot
    return;
  }
  if (rollback_bytes != 0) release_bytes(rollback_bytes);
  raise(t, detail_msg, site, pc);
}

}  // namespace

namespace detail {

void recompute_active() noexcept {
  g_active.store(g_budget_installed.load(std::memory_order_relaxed) ||
                     g_cancel.load(std::memory_order_relaxed) ||
                     g_tripped.load(std::memory_order_relaxed) != 0 ||
                     faults_armed(),
                 std::memory_order_relaxed);
}

void charge_bytes_slow(std::uint64_t bytes) {
  if (fire_alloc()) {
    recompute_active();  // the one-shot countdown may just have drained
    trip(Trap::kInjectAlloc, trap_reason(Trap::kInjectAlloc), "vl.alloc",
         bytes);
    return;  // deferred inside a parallel region: the allocation proceeds
  }
  const std::uint64_t limit = g_max_bytes.load(std::memory_order_relaxed);
  if (limit != 0 && g_resident.load(std::memory_order_relaxed) > limit) {
    trip(Trap::kMemory, trap_reason(Trap::kMemory), "vl.alloc", bytes);
  }
}

void charge_work_slow(std::uint64_t elements) {
  if (fire_kernel()) {
    recompute_active();
    trip(Trap::kInjectKernel, trap_reason(Trap::kInjectKernel), "vl.kernel",
         0);
    return;
  }
  const std::uint64_t total =
      g_steps.fetch_add(elements, std::memory_order_relaxed) + elements;
  const std::uint64_t limit = g_max_steps.load(std::memory_order_relaxed);
  if (limit != 0 && total > limit) {
    trip(Trap::kSteps, trap_reason(Trap::kSteps), "vl.kernel", 0);
  }
}

void poll_slow(const char* site, std::int64_t pc) {
  if (in_parallel_region()) return;  // serial polls re-raise deferrals
  const int deferred = g_tripped.exchange(0, std::memory_order_relaxed);
  if (deferred != 0) {
    recompute_active();
    const Trap t = static_cast<Trap>(deferred);
    raise(t, trap_reason(t), site, pc);
  }
  if (g_cancel.load(std::memory_order_relaxed)) {
    raise(Trap::kCancelled, trap_reason(Trap::kCancelled), site, pc);
  }
  const std::int64_t deadline = g_deadline_ns.load(std::memory_order_relaxed);
  if (deadline != 0) {
    thread_local int countdown = 0;
    if (--countdown <= 0) {
      countdown = kDeadlineStride;
      if (now_ns() > deadline) {
        raise(Trap::kDeadline, trap_reason(Trap::kDeadline), site, pc);
      }
    }
  }
}

}  // namespace detail

std::uint64_t resident_bytes() noexcept {
  return detail::g_resident.load(std::memory_order_relaxed);
}

std::uint64_t steps() noexcept {
  return detail::g_steps.load(std::memory_order_relaxed);
}

void request_cancel() noexcept {
  g_cancel.store(true, std::memory_order_relaxed);
  detail::recompute_active();
}

void clear_cancel() noexcept {
  g_cancel.store(false, std::memory_order_relaxed);
  detail::recompute_active();
}

bool cancel_requested() noexcept {
  return g_cancel.load(std::memory_order_relaxed);
}

int depth_limit() noexcept {
  const int d = g_max_depth.load(std::memory_order_relaxed);
  return d > 0 ? d : kDefaultMaxCallDepth;
}

int nesting_limit() noexcept {
  const int d = g_max_depth.load(std::memory_order_relaxed);
  return d > 0 ? std::min(d, kDefaultMaxNesting) : kDefaultMaxNesting;
}

void raise(Trap trap, const std::string& detail_msg, const char* site,
           std::int64_t pc) {
  throw RuntimeTrap(trap, detail_msg, site, resident_bytes(), steps(), pc);
}

GovernorScope::GovernorScope(const ExecBudget& budget)
    : previous_{g_max_bytes.load(std::memory_order_relaxed),
                g_max_steps.load(std::memory_order_relaxed),
                g_max_depth.load(std::memory_order_relaxed),
                0},
      previous_steps_(detail::g_steps.load(std::memory_order_relaxed)),
      previous_deadline_(g_deadline_ns.load(std::memory_order_relaxed)),
      previous_tripped_(detail::g_tripped.load(std::memory_order_relaxed)) {
  g_max_bytes.store(budget.max_resident_bytes, std::memory_order_relaxed);
  g_max_steps.store(budget.max_steps, std::memory_order_relaxed);
  g_max_depth.store(budget.max_depth, std::memory_order_relaxed);
  g_deadline_ns.store(
      budget.deadline_ms != 0
          ? now_ns() +
                static_cast<std::int64_t>(budget.deadline_ms) * 1'000'000
          : 0,
      std::memory_order_relaxed);
  detail::g_steps.store(0, std::memory_order_relaxed);
  detail::g_tripped.store(0, std::memory_order_relaxed);
  g_budget_installed.store(budget.limits_anything(),
                           std::memory_order_relaxed);
  detail::recompute_active();
}

GovernorScope::~GovernorScope() {
  g_max_bytes.store(previous_.max_resident_bytes, std::memory_order_relaxed);
  g_max_steps.store(previous_.max_steps, std::memory_order_relaxed);
  g_max_depth.store(previous_.max_depth, std::memory_order_relaxed);
  g_deadline_ns.store(previous_deadline_, std::memory_order_relaxed);
  detail::g_steps.store(previous_steps_, std::memory_order_relaxed);
  detail::g_tripped.store(previous_tripped_, std::memory_order_relaxed);
  g_budget_installed.store(previous_.max_resident_bytes != 0 ||
                               previous_.max_steps != 0 ||
                               previous_.max_depth != 0 ||
                               previous_deadline_ != 0,
                           std::memory_order_relaxed);
  detail::recompute_active();
}

}  // namespace proteus::rt
