#include "rt/trap.hpp"

#include "obs/log.hpp"
#include "obs/tracer.hpp"

namespace proteus::rt {

const char* trap_code(Trap t) noexcept {
  switch (t) {
    case Trap::kMemory: return "T001";
    case Trap::kSteps: return "T002";
    case Trap::kDepth: return "T003";
    case Trap::kDeadline: return "T004";
    case Trap::kCancelled: return "T005";
    case Trap::kInjectAlloc: return "T006";
    case Trap::kInjectKernel: return "T007";
    case Trap::kInjectOpt: return "T008";
  }
  return "T???";
}

const char* trap_reason(Trap t) noexcept {
  switch (t) {
    case Trap::kMemory: return "resident vector bytes exceeded the budget";
    case Trap::kSteps: return "element-work steps exceeded the budget";
    case Trap::kDepth: return "depth limit exceeded";
    case Trap::kDeadline: return "wall-clock deadline exceeded";
    case Trap::kCancelled: return "execution cancelled";
    case Trap::kInjectAlloc: return "injected allocation fault";
    case Trap::kInjectKernel: return "injected kernel fault";
    case Trap::kInjectOpt: return "injected optimizer fault";
  }
  return "unknown trap";
}

bool retryable(Trap t) noexcept {
  switch (t) {
    case Trap::kInjectAlloc:
    case Trap::kInjectKernel:
    case Trap::kInjectOpt:
      return true;
    default:
      return false;
  }
}

namespace {

std::string format_what(Trap trap, const std::string& detail,
                        const std::string& site, std::uint64_t bytes,
                        std::uint64_t steps, std::int64_t pc) {
  std::string out = "[";
  out += trap_code(trap);
  out += "] ";
  out += detail;
  out += " (site=";
  out += site;
  if (pc >= 0) {
    out += ", pc=";
    out += std::to_string(pc);
  }
  out += ", bytes=";
  out += std::to_string(bytes);
  out += ", steps=";
  out += std::to_string(steps);
  out += ")";
  return out;
}

}  // namespace

RuntimeTrap::RuntimeTrap(Trap trap, const std::string& detail,
                         std::string site, std::uint64_t bytes,
                         std::uint64_t steps, std::int64_t pc)
    : Error(format_what(trap, detail, site, bytes, steps, pc)),
      trap_(trap),
      site_(std::move(site)),
      bytes_(bytes),
      steps_(steps),
      pc_(pc) {
  // Every trap construction is an observability event: one structured
  // warn record (when logging is on) and one instant on the installed
  // tracer (when tracing is on). Both checks are a relaxed load + branch
  // when telemetry is off, so throwing stays cheap.
  if (obs::log_enabled(obs::LogLevel::kWarn)) {
    obs::log(obs::LogLevel::kWarn, "rt.trap",
             {{"code", code()},
              {"site", site_},
              {"bytes", bytes_},
              {"steps", steps_},
              {"pc", pc_},
              {"message", detail}});
  }
  if (obs::Tracer* t = obs::tracer(); t != nullptr) {
    t->instant("rt", code(), detail,
               {{"bytes", bytes_}, {"steps", steps_}});
  }
}

}  // namespace proteus::rt
