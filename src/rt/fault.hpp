// fault.hpp — deterministic fault injection for the runtime governor and
// the serving transport.
//
// A FaultPlan arms countdowns over six injection sites:
//
//   alloc:N      fail the Nth vector-byte charge (Vec allocation)   -> T006
//   kernel:M     fail the Mth vl kernel work charge                 -> T007
//   opt:K        fail the Kth VCODE optimizer invocation            -> T008
//   sock-read:N  the Nth guarded socket read acts as a peer reset   -> S006
//   sock-write:N the Nth guarded socket write acts as a broken pipe -> S007
//   sock-stall:N the Nth guarded socket read acts as a stalled peer -> S008
//
// Every site is ONE-SHOT: a fired countdown disarms itself, so the
// degradation ladder's retry (and the rest of a test suite run with
// PROTEUS_FAULT in the environment) executes clean. Plans come from the
// PROTEUS_FAULT environment variable (parsed at static initialization,
// like PROTEUS_BACKEND), the proteusc/proteusd --inject flag, or
// arm_faults().
//
// The reference interpreter never touches the vl layer, so it is immune
// to alloc/kernel injection by construction — which is exactly what makes
// it the ladder's last rung and the exception-safety sweep's oracle. The
// sock-* sites are consumed only by proteusd's TCP connection wrappers
// (docs/SERVING.md "Overload & lifecycle"), so evaluation engines never
// observe them.
#pragma once

#include <cstdint>
#include <string>

namespace proteus::rt {

/// Countdown per injection site; 0 = disarmed, N = fail the Nth event.
struct FaultPlan {
  std::uint64_t alloc = 0;
  std::uint64_t kernel = 0;
  std::uint64_t opt = 0;
  std::uint64_t sock_read = 0;
  std::uint64_t sock_write = 0;
  std::uint64_t sock_stall = 0;

  [[nodiscard]] bool armed() const noexcept {
    return alloc != 0 || kernel != 0 || opt != 0 || sock_read != 0 ||
           sock_write != 0 || sock_stall != 0;
  }
};

/// Parses "alloc:N,kernel:M,opt:K,sock-read:R,sock-write:W,sock-stall:S"
/// (any subset, any order). Throws proteus::Error on malformed specs.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Installs the plan's countdowns (replacing any previous plan).
void arm_faults(const FaultPlan& plan) noexcept;

/// Clears every countdown.
void disarm_faults() noexcept;

/// True while at least one countdown is live.
[[nodiscard]] bool faults_armed() noexcept;

/// Remaining countdowns (tests use this to assert one-shot semantics).
[[nodiscard]] FaultPlan pending_faults() noexcept;

/// Injection site for the VCODE optimizer: throws T008 when the `opt`
/// countdown fires. Called by the pipeline's optimize-vcode stage, which
/// degrades to the retained -O0 module on the trap.
void maybe_fail_opt();

namespace detail {
/// Countdown checks for the governor's charge points. Return true when
/// the fault fires (and the site has disarmed itself).
[[nodiscard]] bool fire_alloc() noexcept;
[[nodiscard]] bool fire_kernel() noexcept;
/// Countdown checks for the serving transport's socket wrappers
/// (serve::Server). Same one-shot semantics as the governor sites.
[[nodiscard]] bool fire_sock_read() noexcept;
[[nodiscard]] bool fire_sock_write() noexcept;
[[nodiscard]] bool fire_sock_stall() noexcept;
}  // namespace detail

}  // namespace proteus::rt
