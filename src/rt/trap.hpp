// trap.hpp — the structured runtime-trap taxonomy of the execution
// governor (docs/ROBUSTNESS.md).
//
// Every resource-limit violation, cooperative cancellation, and injected
// fault anywhere in the runtime (vl allocation layer, kernel table, VM
// dispatch loop, tree executors, parser/printer recursion) surfaces as one
// exception type, RuntimeTrap, carrying a stable trap code (T001-T008),
// the site that observed it, and the governor's byte/step counters at the
// moment of the trip — replacing the ad-hoc EvalError throws these paths
// used before. proteusc maps RuntimeTrap to its own exit code (4) so
// resource exhaustion is distinguishable from compile/runtime errors.
#pragma once

#include <cstdint>
#include <string>

#include "vl/check.hpp"

namespace proteus::rt {

/// Stable trap codes. Values are the numeric part of the "T00x" code and
/// must never be renumbered (tests, CI, and the docs key off them).
enum class Trap : std::uint8_t {
  kMemory = 1,        ///< T001: resident vector bytes exceeded the budget
  kSteps = 2,         ///< T002: element-work steps exceeded the budget
  kDepth = 3,         ///< T003: call/nesting depth exceeded the limit
  kDeadline = 4,      ///< T004: wall-clock deadline exceeded
  kCancelled = 5,     ///< T005: cooperative cancellation observed
  kInjectAlloc = 6,   ///< T006: injected allocation fault fired
  kInjectKernel = 7,  ///< T007: injected kernel fault fired
  kInjectOpt = 8,     ///< T008: injected optimizer fault fired
};

/// "T001" ... "T008".
[[nodiscard]] const char* trap_code(Trap t) noexcept;

/// Human-readable one-line reason for the code.
[[nodiscard]] const char* trap_reason(Trap t) noexcept;

/// True for traps a fallback engine can absorb. Injected faults are
/// one-shot (the site disarms after firing), so a retry runs clean;
/// budget traps (T001-T005) are deterministic and would trip again, so
/// the degradation ladder re-throws them instead of wasting the deadline.
[[nodiscard]] bool retryable(Trap t) noexcept;

/// The structured trap exception. Not an EvalError: a trap means the
/// *runtime environment* refused the execution, not that the program is
/// wrong — callers that want to degrade catch this type specifically.
class RuntimeTrap : public Error {
 public:
  RuntimeTrap(Trap trap, const std::string& detail, std::string site,
              std::uint64_t bytes, std::uint64_t steps, std::int64_t pc = -1);

  [[nodiscard]] Trap trap() const noexcept { return trap_; }
  [[nodiscard]] const char* code() const noexcept { return trap_code(trap_); }
  /// Which engine/layer observed the trip ("vm", "exec", "interp",
  /// "fused", "vl.alloc", "vl.kernel", "parser", "printer", ...).
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  /// Governor counters at the moment of the trip.
  [[nodiscard]] std::uint64_t bytes_at_trip() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t steps_at_trip() const noexcept { return steps_; }
  /// Bytecode pc for VM-observed traps; -1 elsewhere.
  [[nodiscard]] std::int64_t pc() const noexcept { return pc_; }

 private:
  Trap trap_;
  std::string site_;
  std::uint64_t bytes_;
  std::uint64_t steps_;
  std::int64_t pc_;
};

}  // namespace proteus::rt
