#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

namespace proteus::obs {

namespace {

/// Bucket index of `value`: its bit width (0 for 0), clamped to the
/// last bucket.
std::size_t bucket_index(std::uint64_t value) noexcept {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return std::min(width, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::observe(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)] += 1;
  count_ += 1;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t i) noexcept {
  if (i >= kBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;  // 0, 1, 3, 7, 15, ...
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The rank we are after, 1-based: q = 0 is the first observation,
  // q = 1 the last.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] < rank) {
      cumulative += buckets_[i];
      continue;
    }
    // The target rank lands in bucket i: interpolate linearly between
    // the bucket's bounds by the rank's position inside it, then clamp
    // to what was actually observed.
    const std::uint64_t lo = i == 0 ? 0 : bucket_upper_bound(i - 1) + 1;
    const std::uint64_t hi = bucket_upper_bound(i);
    const double within = static_cast<double>(rank - cumulative) /
                          static_cast<double>(buckets_[i]);
    const double est =
        static_cast<double>(lo) +
        within * (static_cast<double>(hi) - static_cast<double>(lo));
    const std::uint64_t v = static_cast<std::uint64_t>(est);
    return std::clamp(v, min(), max_);
  }
  return max_;  // unreachable for a consistent histogram
}

}  // namespace proteus::obs
