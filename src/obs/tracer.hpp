// tracer.hpp — spans and events for the whole proteus-vec stack.
//
// One process-global sink pointer selects the installed Tracer (or none).
// Every instrumentation point goes through obs::Span, whose constructor
// loads that pointer once: with no tracer installed a Span is a relaxed
// atomic load, a null check and a handful of member stores — no clock
// read, no allocation, no lock — so instrumentation can stay compiled in
// on the hot paths (the VM dispatch loop, the tree executor's primitive
// application) at near-zero cost.
//
// With a tracer installed, spans record wall-clock intervals (duration
// events) and instants (e.g. one event per transformation-rule firing),
// each carrying named integer counters (elements touched, segments,
// rule-firing tallies). The recorded stream exports to Chrome
// trace-event JSON (open in Perfetto / chrome://tracing) or renders to
// text; see docs/OBSERVABILITY.md for the span and counter naming
// scheme.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace proteus::obs {

/// Named integer counter attached to an event (Chrome trace "args").
using Counter = std::pair<std::string, std::uint64_t>;

/// One recorded event: a completed span (kSpan, with duration) or a
/// point-in-time marker (kInstant, e.g. a rule firing with its source
/// snippet in `text`).
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant };

  Kind kind = Kind::kSpan;
  const char* cat = "";    ///< static category string ("compile", "run", ...)
  std::string name;        ///< span/event name
  std::string text;        ///< instant payload (rule source snippet)
  std::uint64_t start_ns = 0;  ///< offset from the tracer's epoch
  std::uint64_t dur_ns = 0;    ///< spans only
  std::uint32_t tid = 0;       ///< small sequential per-thread id
  std::vector<Counter> counters;
};

/// Thread-safe event collector. Create one, install it with set_tracer
/// (or TracerScope), run the region of interest, then export.
class Tracer {
 public:
  Tracer();

  /// Appends a finished event (thread-safe).
  void record(TraceEvent e);

  /// Records an instant event at the current time on this thread.
  void instant(const char* cat, std::string name, std::string text = {},
               std::vector<Counter> counters = {});

  /// Nanoseconds since this tracer's construction.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Snapshot of everything recorded so far.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Number of events recorded so far (cheap; use to slice a region).
  [[nodiscard]] std::size_t event_count() const;

  void clear();

  /// Writes the Chrome trace-event JSON document (the whole recorded
  /// stream; loadable in Perfetto or chrome://tracing).
  void write_chrome_trace(std::ostream& os) const;

  /// Renders "rule"-category instant events as the classic derivation
  /// lines ("{R2c} @1  <snippet>"), starting at event index `from`.
  /// Both `--dump trace` and Compiled::derivation go through this one
  /// renderer so the textual and JSON traces cannot diverge.
  [[nodiscard]] std::vector<std::string> rule_lines(
      std::size_t from = 0) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// The installed tracer, or nullptr when tracing is off (the default).
/// A thread-local override (ThreadTracerScope) wins over the process
/// global, so concurrent daemon requests can each record into their own
/// sink without seeing each other's spans.
[[nodiscard]] Tracer* tracer() noexcept;

/// Installs `t` as the process-global sink (nullptr to disable).
/// Returns the previous global sink. Thread-local overrides are not
/// affected.
Tracer* set_tracer(Tracer* t) noexcept;

/// Installs `t` as this thread's sink, shadowing the global one.
/// Returns the previous thread-local override (nullptr when none).
Tracer* set_thread_tracer(Tracer* t) noexcept;

/// RAII install/restore of the process-global tracer.
class TracerScope {
 public:
  explicit TracerScope(Tracer* t) noexcept : previous_(set_tracer(t)) {}
  ~TracerScope() { set_tracer(previous_); }
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  Tracer* previous_;
};

/// Like TracerScope, but a null `t` means "leave the current sink alone"
/// instead of "disable tracing" — the right semantics for optional
/// per-Session / per-pipeline tracers.
class MaybeTracerScope {
 public:
  explicit MaybeTracerScope(Tracer* t) noexcept
      : installed_(t != nullptr),
        previous_(installed_ ? set_tracer(t) : nullptr) {}
  ~MaybeTracerScope() {
    if (installed_) set_tracer(previous_);
  }
  MaybeTracerScope(const MaybeTracerScope&) = delete;
  MaybeTracerScope& operator=(const MaybeTracerScope&) = delete;

 private:
  bool installed_;
  Tracer* previous_;
};

/// RAII install/restore of the calling thread's tracer override. While
/// in scope, spans recorded *on this thread* go to `t` regardless of
/// the process-global sink — the per-request isolation the serving
/// daemon needs when several workers trace concurrently. A null `t`
/// means "no override": tracer() falls through to the process global,
/// which makes nesting and restore compose naturally.
///
/// Caveat: the override is per-thread by design, so OpenMP worker
/// threads spawned inside the scoped region still see the process
/// global, not the override.
class ThreadTracerScope {
 public:
  explicit ThreadTracerScope(Tracer* t) noexcept
      : previous_(set_thread_tracer(t)) {}
  ~ThreadTracerScope() { set_thread_tracer(previous_); }
  ThreadTracerScope(const ThreadTracerScope&) = delete;
  ThreadTracerScope& operator=(const ThreadTracerScope&) = delete;

 private:
  Tracer* previous_;
};

/// Small sequential id of the calling thread (stable for its lifetime).
[[nodiscard]] std::uint32_t thread_id() noexcept;

/// RAII span. Constructing one when no tracer is installed costs a
/// relaxed load and a branch; name and category must be static strings
/// (string literals, prim_name()/op_name() results) so the inactive
/// path never allocates.
class Span {
 public:
  Span(const char* cat, const char* name) noexcept
      : tracer_(tracer()), cat_(cat), name_(name) {
    if (tracer_ != nullptr) start_ns_ = tracer_->now_ns();
  }

  ~Span() {
    if (tracer_ == nullptr) return;
    TraceEvent e;
    e.kind = TraceEvent::Kind::kSpan;
    e.cat = cat_;
    e.name = name_;
    e.start_ns = start_ns_;
    e.dur_ns = tracer_->now_ns() - start_ns_;
    e.tid = thread_id();
    e.counters = std::move(counters_);
    tracer_->record(std::move(e));
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when a tracer is recording this span (use to skip computing
  /// counter values that only exist for tracing).
  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

  /// Attaches a named counter (no-op when inactive).
  void counter(std::string name, std::uint64_t value) {
    if (tracer_ != nullptr) counters_.emplace_back(std::move(name), value);
  }

 private:
  Tracer* tracer_;
  const char* cat_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::vector<Counter> counters_;
};

/// Escapes `s` for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace proteus::obs
