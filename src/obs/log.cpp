#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "obs/tracer.hpp"  // json_escape

namespace proteus::obs {

namespace {

/// Milliseconds since the Unix epoch.
std::uint64_t now_epoch_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// "2026-08-08T12:00:00.123Z" for the text format.
std::string iso8601_utc(std::uint64_t epoch_ms) {
  const auto secs = static_cast<std::time_t>(epoch_ms / 1000);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03uZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<unsigned>(epoch_ms % 1000));
  return buf;
}

/// A text-format value needs quoting when it has spaces/quotes/empties.
bool needs_quotes(std::string_view s) {
  if (s.empty()) return true;
  for (const char c : s) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t' ||
        c == '\r') {
      return true;
    }
  }
  return false;
}

std::string text_value(std::string_view s) {
  if (!needs_quotes(s)) return std::string(s);
  return '"' + json_escape(s) + '"';
}

}  // namespace

LogLevel parse_log_level(std::string_view s, bool* ok) noexcept {
  if (ok != nullptr) *ok = true;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  if (ok != nullptr) *ok = false;
  return LogLevel::kOff;
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "off";
}

void Logger::configure(LogLevel level, bool json, std::ostream* sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
  json_.store(json, std::memory_order_relaxed);
  level_.store(level, std::memory_order_relaxed);
}

void Logger::write_range(LogLevel level, std::string_view event,
                         const LogField* begin, const LogField* end) {
  if (!enabled(level)) return;
  const std::uint64_t ts_ms = now_epoch_ms();
  const bool as_json = json();

  // Render into a local buffer first so the lock only covers the final
  // single-line emission.
  std::string line;
  line.reserve(128);
  if (as_json) {
    line += "{\"ts_ms\":";
    line += std::to_string(ts_ms);
    line += ",\"level\":\"";
    line += log_level_name(level);
    line += "\",\"event\":\"";
    line += json_escape(event);
    line += '"';
    for (const LogField* it = begin; it != end; ++it) {
      const LogField& f = *it;
      line += ",\"";
      line += json_escape(f.key);
      line += "\":";
      switch (f.kind) {
        case LogField::Kind::kUint:
          line += std::to_string(f.uint_value);
          break;
        case LogField::Kind::kInt:
          line += std::to_string(f.int_value);
          break;
        case LogField::Kind::kString:
          line += '"';
          line += json_escape(f.string_value);
          line += '"';
          break;
      }
    }
    line += '}';
  } else {
    line += "ts=";
    line += iso8601_utc(ts_ms);
    line += " level=";
    line += log_level_name(level);
    line += " event=";
    line += event;
    for (const LogField* it = begin; it != end; ++it) {
      const LogField& f = *it;
      line += ' ';
      line += f.key;
      line += '=';
      switch (f.kind) {
        case LogField::Kind::kUint:
          line += std::to_string(f.uint_value);
          break;
        case LogField::Kind::kInt:
          line += std::to_string(f.int_value);
          break;
        case LogField::Kind::kString:
          line += text_value(f.string_value);
          break;
      }
    }
  }
  line += '\n';

  const std::lock_guard<std::mutex> lock(mu_);
  std::ostream& os = sink_ != nullptr ? *sink_ : std::cerr;
  os << line;
  os.flush();
}

Logger& logger() {
  static Logger instance;
  return instance;
}

bool log_enabled(LogLevel level) noexcept { return logger().enabled(level); }

void log(LogLevel level, std::string_view event,
         std::initializer_list<LogField> fields) {
  logger().write(level, event, fields);
}

void log(LogLevel level, std::string_view event,
         const std::vector<LogField>& fields) {
  logger().write(level, event, fields);
}

}  // namespace proteus::obs
