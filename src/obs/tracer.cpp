#include "obs/tracer.hpp"

#include <atomic>
#include <cstdio>

namespace proteus::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<Tracer*> g_tracer{nullptr};

/// Per-thread override; non-null shadows g_tracer (ThreadTracerScope).
thread_local Tracer* t_tracer = nullptr;

std::atomic<std::uint32_t> g_next_thread_id{0};

std::uint32_t make_thread_id() noexcept {
  return g_next_thread_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Microseconds with sub-microsecond precision, the unit of the Chrome
/// trace-event "ts"/"dur" fields.
void write_us(std::ostream& os, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

void write_args(std::ostream& os, const TraceEvent& e) {
  os << "\"args\":{";
  bool first = true;
  for (const Counter& c : e.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(c.first) << "\":" << c.second;
  }
  if (!e.text.empty()) {
    if (!first) os << ',';
    os << "\"expr\":\"" << json_escape(e.text) << '"';
  }
  os << '}';
}

}  // namespace

Tracer* tracer() noexcept {
  if (t_tracer != nullptr) return t_tracer;
  return g_tracer.load(std::memory_order_relaxed);
}

Tracer* set_tracer(Tracer* t) noexcept {
  return g_tracer.exchange(t, std::memory_order_relaxed);
}

Tracer* set_thread_tracer(Tracer* t) noexcept {
  Tracer* previous = t_tracer;
  t_tracer = t;
  return previous;
}

std::uint32_t thread_id() noexcept {
  thread_local const std::uint32_t id = make_thread_id();
  return id;
}

Tracer::Tracer() : epoch_(Clock::now()) {}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch_)
          .count());
}

void Tracer::record(TraceEvent e) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::instant(const char* cat, std::string name, std::string text,
                     std::vector<Counter> counters) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.cat = cat;
  e.name = std::move(name);
  e.text = std::move(text);
  e.start_ns = now_ns();
  e.tid = thread_id();
  e.counters = std::move(counters);
  record(std::move(e));
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> snapshot = events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : snapshot) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.cat) << "\",\"ph\":\""
       << (e.kind == TraceEvent::Kind::kSpan ? 'X' : 'i')
       << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":";
    write_us(os, e.start_ns);
    if (e.kind == TraceEvent::Kind::kSpan) {
      os << ",\"dur\":";
      write_us(os, e.dur_ns);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ',';
    write_args(os, e);
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<std::string> Tracer::rule_lines(std::size_t from) const {
  const std::vector<TraceEvent> snapshot = events();
  std::vector<std::string> lines;
  for (std::size_t i = from; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    if (e.kind != TraceEvent::Kind::kInstant ||
        std::string_view(e.cat) != "rule") {
      continue;
    }
    std::uint64_t depth = 0;
    for (const Counter& c : e.counters) {
      if (c.first == "depth") depth = c.second;
    }
    lines.push_back("{" + e.name + "} @" + std::to_string(depth) + "  " +
                    e.text);
  }
  return lines;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace proteus::obs
