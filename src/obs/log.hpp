// log.hpp — leveled, structured (NDJSON-able) logging for the daemon.
//
// One process-global Logger, off by default: a disabled `log(...)` call
// site costs one relaxed atomic load and a branch, and callers that
// build fields should guard with `log_enabled(level)` first so field
// construction is never paid when the level is filtered. When enabled,
// every record renders as exactly one line on the configured sink
// (stderr for proteusd) under one mutex — lines from concurrent request
// workers never interleave.
//
// Two formats, switched by `configure`:
//   text:  ts=2026-08-08T12:00:00.123Z level=info event=serve.request op=eval ...
//   json:  {"ts_ms":1786536000123,"level":"info","event":"serve.request","op":"eval",...}
//
// The JSON form is NDJSON: one object per line, integer values stay
// integers, everything else is an escaped string. Field keys come from
// call sites and are assumed to be sane identifiers (dotted names fine).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace proteus::obs {

enum class LogLevel : std::uint8_t { kDebug, kInfo, kWarn, kError, kOff };

/// "debug" / "info" / "warn" / "error" / "off"; anything else is kOff
/// with `ok` (when given) set to false.
[[nodiscard]] LogLevel parse_log_level(std::string_view s,
                                       bool* ok = nullptr) noexcept;

/// Lower-case level name ("debug", ..., "off").
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// One key/value pair of a structured record. Integer values render as
/// JSON numbers; strings are escaped.
struct LogField {
  enum class Kind : std::uint8_t { kUint, kInt, kString };

  LogField(std::string k, std::uint64_t v)
      : key(std::move(k)), kind(Kind::kUint), uint_value(v) {}
  LogField(std::string k, std::int64_t v)
      : key(std::move(k)), kind(Kind::kInt), int_value(v) {}
  LogField(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), string_value(std::move(v)) {}
  LogField(std::string k, std::string_view v)
      : LogField(std::move(k), std::string(v)) {}
  LogField(std::string k, const char* v)
      : LogField(std::move(k), std::string(v)) {}

  std::string key;
  Kind kind;
  std::uint64_t uint_value = 0;
  std::int64_t int_value = 0;
  std::string string_value;
};

class Logger {
 public:
  /// Installs level/format/sink atomically with respect to concurrent
  /// `write` calls. A null `sink` means stderr.
  void configure(LogLevel level, bool json, std::ostream* sink = nullptr);

  /// Cheapest possible check — relaxed load + compare.
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool json() const noexcept {
    return json_.load(std::memory_order_relaxed);
  }

  /// Renders one record as a single line. No-op when `level` is below
  /// the configured threshold.
  void write(LogLevel level, std::string_view event,
             std::initializer_list<LogField> fields) {
    write_range(level, event, fields.begin(), fields.end());
  }

  /// Same, for call sites that build their field list dynamically.
  void write(LogLevel level, std::string_view event,
             const std::vector<LogField>& fields) {
    write_range(level, event, fields.data(), fields.data() + fields.size());
  }

 private:
  void write_range(LogLevel level, std::string_view event,
                   const LogField* begin, const LogField* end);

  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::atomic<bool> json_{false};
  std::mutex mu_;           ///< guards sink_ and line emission
  std::ostream* sink_ = nullptr;  ///< null = stderr
};

/// The process-global logger (level kOff until configured).
[[nodiscard]] Logger& logger();

/// True when a `log(level, ...)` call would emit. Guard field
/// construction with this at hot call sites.
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Emits one structured record through the global logger.
void log(LogLevel level, std::string_view event,
         std::initializer_list<LogField> fields = {});
void log(LogLevel level, std::string_view event,
         const std::vector<LogField>& fields);

}  // namespace proteus::obs
