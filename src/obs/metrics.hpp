// metrics.hpp — the flat metric sink all engines report through.
//
// A MetricsRegistry is an ordered map of dotted metric names to integer
// values ("vl.element_work", "vm.instructions", "vec.prim.plus", ...).
// The engine-specific stat structs (interp::InterpStats, exec::ExecStats,
// vm::VMStats, vl::VectorStats) stay plain structs on the hot paths;
// after every Session::run_* call they are *published* into one registry
// under the unified schema of docs/OBSERVABILITY.md, so the three
// engines — and every future one — report through the same names and
// the same exporters (text, JSON, and OpenMetrics).
//
// Three metric kinds:
//   counters   — set()/add(); monotonically meaningful totals.
//   gauges     — set_gauge(); point-in-time values (uptime, inflight).
//   histograms — observe(); log-bucketed distributions (obs::Histogram)
//                for latencies and sizes, with p50/p95/p99 estimation.
// The text and JSON exporters flatten each histogram into scalar
// entries (name.count/.sum/.min/.max/.p50/.p95/.p99) so existing
// consumers keep working; the OpenMetrics exporter emits real
// cumulative `_bucket{le="..."}` series for Prometheus.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace proteus::obs {

class MetricsRegistry {
 public:
  /// Transparent comparator so string_view lookups don't allocate.
  using Map = std::map<std::string, std::uint64_t, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  /// Sets counter `name` to `value` (overwrites).
  void set(std::string name, std::uint64_t value);

  /// Adds `delta` to counter `name` (creates at 0).
  void add(std::string name, std::uint64_t delta);

  /// Sets gauge `name` to `value`. Gauges share the scalar namespace
  /// with counters but export with OpenMetrics type `gauge` (no
  /// `_total` suffix).
  void set_gauge(std::string name, std::uint64_t value);

  /// Records one observation into histogram `name` (creates empty).
  void observe(std::string name, std::uint64_t value);

  /// Pre-registered handle for hot paths: creates histogram `name` (if
  /// absent) and returns a pointer the caller may observe() through
  /// directly, skipping the per-observation name lookup. Map nodes are
  /// stable, so the handle stays valid until clear(); callers provide
  /// the same synchronization they would for observe().
  [[nodiscard]] Histogram* histogram_handle(std::string name);

  /// Value of scalar `name`, or 0 when never reported.
  [[nodiscard]] std::uint64_t get(std::string_view name) const;

  /// True when scalar `name` has been reported.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// True when `name` was reported via set_gauge.
  [[nodiscard]] bool is_gauge(std::string_view name) const;

  /// Histogram `name`, or nullptr when never observed.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  [[nodiscard]] const Map& all() const { return values_; }
  [[nodiscard]] const HistogramMap& histograms() const { return histograms_; }

  [[nodiscard]] bool empty() const {
    return values_.empty() && histograms_.empty();
  }

  void clear() {
    values_.clear();
    gauge_names_.clear();
    histograms_.clear();
  }

  /// One "name value" line per metric, sorted by name. Histograms
  /// flatten to name.count/.sum/.min/.max/.p50/.p95/.p99 lines.
  void write_text(std::ostream& os) const;

  /// A flat JSON object {"name": value, ...}, sorted by name, with the
  /// same histogram flattening as write_text.
  void write_json(std::ostream& os) const;

  /// OpenMetrics text exposition (Prometheus-scrapeable): `# TYPE`
  /// lines, `_total`-suffixed counters, cumulative
  /// `_bucket{le="..."}` histogram series, terminated by `# EOF`.
  /// Dotted names mangle to underscores (see openmetrics_name).
  void write_openmetrics(std::ostream& os) const;

 private:
  Map values_;
  std::set<std::string, std::less<>> gauge_names_;
  HistogramMap histograms_;
};

/// Mangles a dotted metric name into the OpenMetrics charset
/// [a-zA-Z0-9_:]: every other byte becomes '_', and a leading digit
/// gains a '_' prefix ("serve.eval.duration_us" →
/// "serve_eval_duration_us").
[[nodiscard]] std::string openmetrics_name(std::string_view name);

}  // namespace proteus::obs
