// metrics.hpp — the flat metric sink all engines report through.
//
// A MetricsRegistry is an ordered map of dotted metric names to integer
// values ("vl.element_work", "vm.instructions", "vec.prim.plus", ...).
// The engine-specific stat structs (interp::InterpStats, exec::ExecStats,
// vm::VMStats, vl::VectorStats) stay plain structs on the hot paths;
// after every Session::run_* call they are *published* into one registry
// under the unified schema of docs/OBSERVABILITY.md, so the three
// engines — and every future one — report through the same names and
// the same exporters (text and JSON).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

namespace proteus::obs {

class MetricsRegistry {
 public:
  /// Transparent comparator so string_view lookups don't allocate.
  using Map = std::map<std::string, std::uint64_t, std::less<>>;

  /// Sets `name` to `value` (overwrites).
  void set(std::string name, std::uint64_t value);

  /// Adds `delta` to `name` (creates at 0).
  void add(std::string name, std::uint64_t delta);

  /// Value of `name`, or 0 when never reported.
  [[nodiscard]] std::uint64_t get(std::string_view name) const;

  /// True when `name` has been reported.
  [[nodiscard]] bool contains(std::string_view name) const;

  [[nodiscard]] const Map& all() const { return values_; }

  [[nodiscard]] bool empty() const { return values_.empty(); }

  void clear() { values_.clear(); }

  /// One "name value" line per metric, sorted by name.
  void write_text(std::ostream& os) const;

  /// A flat JSON object {"name": value, ...}, sorted by name.
  void write_json(std::ostream& os) const;

 private:
  Map values_;
};

}  // namespace proteus::obs
