#include "obs/metrics.hpp"

#include "obs/tracer.hpp"

namespace proteus::obs {

void MetricsRegistry::set(std::string name, std::uint64_t value) {
  values_[std::move(name)] = value;
}

void MetricsRegistry::add(std::string name, std::uint64_t delta) {
  values_[std::move(name)] += delta;
}

std::uint64_t MetricsRegistry::get(std::string_view name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return values_.find(name) != values_.end();
}

void MetricsRegistry::write_text(std::ostream& os) const {
  for (const auto& [name, value] : values_) {
    os << name << ' ' << value << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << '}';
}

}  // namespace proteus::obs
