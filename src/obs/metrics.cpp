#include "obs/metrics.hpp"

#include <utility>
#include <vector>

#include "obs/tracer.hpp"

namespace proteus::obs {

namespace {

/// Flattened scalar views of one histogram, in exporter order. The
/// suffixes are part of the public text/JSON schema
/// (docs/OBSERVABILITY.md): summary statistics ride alongside plain
/// counters so every existing consumer of write_text/write_json sees
/// histograms without learning a new shape.
std::vector<std::pair<std::string, std::uint64_t>> flatten(
    const std::string& name, const Histogram& h) {
  return {
      {name + ".count", h.count()}, {name + ".max", h.max()},
      {name + ".min", h.min()},     {name + ".p50", h.p50()},
      {name + ".p95", h.p95()},     {name + ".p99", h.p99()},
      {name + ".sum", h.sum()},
  };
}

/// Merges scalars and flattened histograms into one name-sorted list.
MetricsRegistry::Map flat_view(const MetricsRegistry& reg) {
  MetricsRegistry::Map out = reg.all();
  for (const auto& [name, h] : reg.histograms()) {
    for (auto& [k, v] : flatten(name, h)) out[std::move(k)] = v;
  }
  return out;
}

}  // namespace

void MetricsRegistry::set(std::string name, std::uint64_t value) {
  values_[std::move(name)] = value;
}

void MetricsRegistry::add(std::string name, std::uint64_t delta) {
  values_[std::move(name)] += delta;
}

void MetricsRegistry::set_gauge(std::string name, std::uint64_t value) {
  gauge_names_.insert(name);
  values_[std::move(name)] = value;
}

void MetricsRegistry::observe(std::string name, std::uint64_t value) {
  histograms_[std::move(name)].observe(value);
}

Histogram* MetricsRegistry::histogram_handle(std::string name) {
  return &histograms_[std::move(name)];
}

std::uint64_t MetricsRegistry::get(std::string_view name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return values_.find(name) != values_.end();
}

bool MetricsRegistry::is_gauge(std::string_view name) const {
  return gauge_names_.find(name) != gauge_names_.end();
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_text(std::ostream& os) const {
  for (const auto& [name, value] : flat_view(*this)) {
    os << name << ' ' << value << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : flat_view(*this)) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << '}';
}

void MetricsRegistry::write_openmetrics(std::ostream& os) const {
  for (const auto& [name, value] : values_) {
    const std::string om = openmetrics_name(name);
    if (is_gauge(name)) {
      os << "# TYPE " << om << " gauge\n" << om << ' ' << value << '\n';
    } else {
      os << "# TYPE " << om << " counter\n"
         << om << "_total " << value << '\n';
    }
  }
  for (const auto& [name, h] : histograms_) {
    const std::string om = openmetrics_name(name);
    os << "# TYPE " << om << " histogram\n";
    // Cumulative buckets; empty buckets are elided (the le set of an
    // OpenMetrics histogram is arbitrary) but "+Inf" always closes it.
    std::uint64_t cumulative = 0;
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
      if (buckets[i] == 0) continue;
      cumulative += buckets[i];
      os << om << "_bucket{le=\"" << Histogram::bucket_upper_bound(i)
         << "\"} " << cumulative << '\n';
    }
    os << om << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
    os << om << "_sum " << h.sum() << '\n';
    os << om << "_count " << h.count() << '\n';
  }
  os << "# EOF\n";
}

std::string openmetrics_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace proteus::obs
