// histogram.hpp — fixed log-bucketed distributions for latencies & sizes.
//
// A Histogram is a plain value type: 65 power-of-two buckets (one per
// possible bit width of a uint64, plus a zero bucket), a count, a sum,
// and the observed min/max. `observe` is a handful of arithmetic
// instructions and two array increments — no allocation, no lock, no
// clock read — so it is cheap enough to record on every daemon request
// (`serve.eval.duration_us`, see docs/OBSERVABILITY.md). Quantiles
// (p50/p95/p99) are *estimates*: linear interpolation inside the bucket
// that holds the target rank, clamped to the observed min/max, with a
// worst-case relative error of one bucket width (2x).
//
// Thread-safety is the caller's problem, exactly like MetricsRegistry:
// the serving daemon guards its registry (histograms included) with one
// mutex; hot-path engine counters never touch these.
#pragma once

#include <array>
#include <cstdint>

namespace proteus::obs {

class Histogram {
 public:
  /// Bucket i holds values whose bit width is i: bucket 0 holds only 0,
  /// bucket i (i >= 1) holds [2^(i-1), 2^i - 1], bucket 64 holds the
  /// top half of the uint64 range.
  static constexpr std::size_t kBuckets = 65;

  /// Records one observation. Never fails, never allocates.
  void observe(std::uint64_t value) noexcept;

  /// Folds `other` into this histogram (count/sum/min/max/buckets).
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Smallest / largest value observed (0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }

  /// Inclusive upper bound of bucket i (0, 1, 3, 7, ..., UINT64_MAX).
  [[nodiscard]] static std::uint64_t bucket_upper_bound(
      std::size_t i) noexcept;

  /// Estimated value at quantile q in [0, 1]: q = 0.5 is the median,
  /// 0.99 the p99. Returns 0 for an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

  void clear() noexcept { *this = Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace proteus::obs
