// obs.hpp — umbrella header for the tracing & metrics subsystem.
//
// Spans + Chrome-trace export: obs/tracer.hpp.
// Unified metric sink + text/JSON reports: obs/metrics.hpp.
// Schema and usage: docs/OBSERVABILITY.md.
#pragma once

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
