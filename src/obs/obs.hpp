// obs.hpp — umbrella header for the tracing & metrics subsystem.
//
// Spans + Chrome-trace export + thread-local sinks: obs/tracer.hpp.
// Unified metric sink + text/JSON/OpenMetrics exporters: obs/metrics.hpp.
// Log-bucketed latency/size distributions: obs/histogram.hpp.
// Leveled structured (NDJSON) logging: obs/log.hpp.
// Schema and usage: docs/OBSERVABILITY.md.
#pragma once

#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
