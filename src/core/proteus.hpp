// proteus.hpp — the public API of proteus-vec.
//
// A Session compiles a program in the data-parallel language P through the
// whole directed-transformation pipeline of the paper and can run any of
// its functions (or the optional entry expression) on both engines:
//
//   * the reference interpreter (per-element iterator semantics — the
//     paper's sequential simulation),
//   * the vector-model tree executor (flat representation + depth-1
//     vector primitives, walking the V-form AST), and
//   * the bytecode VM (the same V program assembled into a VCODE-style
//     linear instruction stream — the paper's actual CVL-level target).
//
// All engines take and return boxed interp::Values so results are
// directly comparable; cost counters for each engine are exposed for the
// machine-independent measurements the Proteus methodology prescribes.
//
// Quickstart:
//
//   proteus::Session s(R"(
//     fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
//   )");
//   auto v = s.run_vector("sqs", {proteus::parse_value("5")});
//   // v == [1,4,9,16,25]
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exec/exec.hpp"
#include "interp/interp.hpp"
#include "obs/obs.hpp"
#include "rt/rt.hpp"
#include "vl/backend.hpp"
#include "vm/vm.hpp"
#include "xform/pipeline.hpp"

namespace proteus {

/// Cost counters from the most recent run_* call on a Session. Reset at
/// the start of every run_* call, so it never mixes two runs.
///
/// The engine-specific structs stay the fast hot-path counters; after
/// the run they are published into `metrics` under the unified schema of
/// docs/OBSERVABILITY.md ("ref.*", "vec.*", "vm.*", "vl.*"), so every
/// engine reports through the same names and the same exporters.
struct RunCost {
  interp::InterpStats reference;  ///< populated by run_reference
  exec::ExecStats vector_ops;     ///< populated by run_vector
  vl::VectorStats vector_work;    ///< vl primitive calls / element work
  vm::VMStats vm_ops;             ///< populated by run_vm (per-opcode profile)
  obs::MetricsRegistry metrics;   ///< the unified flat view of the above
};

class Session {
 public:
  /// Compiles `program_source` (and an optional entry expression in its
  /// scope) through parse -> check -> R1 -> R2 -> T1.
  explicit Session(std::string_view program_source,
                   std::string_view entry_source = {},
                   const xform::PipelineOptions& options = {});

  /// Wraps an already-compiled program. The compilation is shared, not
  /// copied: this is the compile-once / evaluate-many constructor the
  /// serving daemon builds per-request Sessions from — N concurrent
  /// requests against one cached program cost one compile and N cheap
  /// Session shells (docs/SERVING.md).
  explicit Session(std::shared_ptr<const xform::Compiled> compiled,
                   const xform::PipelineOptions& options = {});

  /// Runs function `name` on the reference interpreter.
  [[nodiscard]] interp::Value run_reference(const std::string& name,
                                            const interp::ValueList& args);

  /// Runs function `name` on the vector-model executor (arguments are
  /// converted to the flat representation per the function's signature).
  [[nodiscard]] interp::Value run_vector(const std::string& name,
                                         const interp::ValueList& args);

  /// Runs function `name` on the bytecode VM (same conversions and
  /// result as run_vector; per-opcode profile lands in last_cost().vm_ops).
  [[nodiscard]] interp::Value run_vm(const std::string& name,
                                     const interp::ValueList& args);

  /// Runs the entry expression on the reference interpreter.
  [[nodiscard]] interp::Value run_entry_reference();

  /// Runs the transformed entry expression on the vector-model executor.
  [[nodiscard]] interp::Value run_entry_vector();

  /// Runs the compiled entry expression on the bytecode VM.
  [[nodiscard]] interp::Value run_entry_vm();

  /// Enables per-opcode wall-clock timing on subsequent run_vm calls
  /// (one clock read per instruction; off by default).
  void set_vm_profile(bool enabled) { vm_profile_ = enabled; }

  /// Enables plan-backed arena execution on subsequent run_vm calls:
  /// dead registers clear at their statically known last use and freed
  /// buffers recycle through a per-evaluation arena sized from the
  /// memory plan (vl.buffer_allocs drops; results are bit-identical).
  /// Off by default. See docs/VM.md.
  void set_arena(bool enabled) { vm_arena_ = enabled; }

  /// Enables plan-based admission control on subsequent run_vm calls:
  /// a call whose static peak-resident bound already exceeds the
  /// budget's max_resident_bytes traps T001 up front. Off by default.
  void set_admission(bool enabled) { vm_admission_ = enabled; }

  /// Installs a tracer for subsequent run_* calls: each run installs it
  /// as the process-global obs sink for its duration and records one
  /// "run" span per execution plus per-primitive / per-opcode spans.
  /// Pass nullptr to detach. To also trace compilation, install the
  /// tracer globally (obs::set_tracer) before constructing the Session.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs a resource budget enforced on subsequent run_* calls
  /// (resident vl bytes, element-work steps, call depth, deadline).
  /// Violations raise rt::RuntimeTrap; see docs/ROBUSTNESS.md.
  void set_budget(const rt::ExecBudget& budget) { budget_ = budget; }
  [[nodiscard]] const rt::ExecBudget& budget() const { return budget_; }

  /// Enables/disables the graceful-degradation ladder (default on).
  /// With fallback on, a retryable trap (an injected fault) in the
  /// optimized VM path retries on the -O0 module, then the tree
  /// executor, then the reference interpreter; run_vector retries on
  /// the interpreter. With fallback off, every trap propagates.
  void set_fallback(bool enabled) { fallback_ = enabled; }

  /// Human-readable record of every degradation (and the final trap, if
  /// any) taken by the most recent run_* call. Empty for healthy runs.
  [[nodiscard]] const std::vector<std::string>& last_degradations() const {
    return degradations_;
  }

  /// All intermediate forms (checked / canonical / flat / vector).
  [[nodiscard]] const xform::Compiled& compiled() const { return *compiled_; }

  /// The shared compilation itself, e.g. for constructing further
  /// Sessions over the same program.
  [[nodiscard]] const std::shared_ptr<const xform::Compiled>& compiled_ptr()
      const {
    return compiled_;
  }

  /// Cost counters gathered by the most recent run_* call.
  [[nodiscard]] const RunCost& last_cost() const { return cost_; }

  /// Static type of `name`'s result (after checking).
  [[nodiscard]] lang::TypePtr result_type(const std::string& name) const;

 private:
  struct Rung;  // one engine attempt of the degradation ladder

  const lang::FunDef& checked_fun(const std::string& name) const;
  interp::Value run_ladder(std::vector<Rung> rungs);

  std::shared_ptr<const xform::Compiled> compiled_;
  exec::PrimOptions prim_options_;
  bool vm_profile_ = false;
  bool vm_arena_ = false;
  bool vm_admission_ = false;
  obs::Tracer* tracer_ = nullptr;
  RunCost cost_;
  rt::ExecBudget budget_;
  bool fallback_ = true;
  std::vector<std::string> degradations_;
};

/// Runs a deserialized VCODE module (vm/module_io.hpp) on the bytecode VM
/// with no AST in the process: argument/result conversion is guided by the
/// module's serialized Signatures instead of the checked program. Used by
/// `proteusc --load-module` and the daemon's on-disk cache hits.
///
/// There is deliberately no degradation ladder below the VM here — the
/// fallback engines re-execute source forms a bare module does not carry —
/// so resource traps propagate as rt::RuntimeTrap for the caller to
/// surface (the daemon turns them into structured error replies).
class ModuleRunner {
 public:
  /// `module` must already be verified (vm::load_module does this).
  explicit ModuleRunner(std::shared_ptr<const vm::Module> module);

  /// Runs function `name`; it must carry a serialized Signature (user
  /// functions and the entry do; internal `^d` extensions do not).
  [[nodiscard]] interp::Value run(const std::string& name,
                                  const interp::ValueList& args);

  /// Runs the module's entry expression.
  [[nodiscard]] interp::Value run_entry();

  void set_budget(const rt::ExecBudget& budget) { budget_ = budget; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Same plan-backed arena / admission knobs as Session (run_vm path).
  void set_arena(bool enabled) { vm_arena_ = enabled; }
  void set_admission(bool enabled) { vm_admission_ = enabled; }

  [[nodiscard]] const vm::Module& module() const { return *module_; }
  [[nodiscard]] const RunCost& last_cost() const { return cost_; }

 private:
  [[nodiscard]] interp::Value run_at(std::uint32_t index,
                                     const interp::ValueList& args);

  std::shared_ptr<const vm::Module> module_;
  exec::PrimOptions prim_options_;
  bool vm_arena_ = false;
  bool vm_admission_ = false;
  obs::Tracer* tracer_ = nullptr;
  RunCost cost_;
  rt::ExecBudget budget_;
};

/// Parses and evaluates a closed P literal/expression (e.g.
/// "[[1,2],[3]]"), yielding a boxed value — convenient for building test
/// and example inputs.
[[nodiscard]] interp::Value parse_value(std::string_view literal);

}  // namespace proteus
