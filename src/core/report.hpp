// report.hpp — publishing engine stats into the unified metric schema
// and rendering them for humans and machines.
//
// Schema (full list in docs/OBSERVABILITY.md):
//   ref.iterations / ref.scalar_ops / ref.steps / ref.calls
//   vec.calls / vec.prim_applications / vec.prim.<name>
//   vm.calls / vm.instructions / vm.prim_applications / vm.prim.<name>
//   vm.op.<name>.count / vm.op.<name>.work / vm.op.<name>.ns
//   vl.primitive_calls / vl.element_work / vl.segment_work / vl.buffer_allocs
//
// Session::run_* calls publish_metrics automatically; the renderers
// back `proteusc --stats` (text) and `--stats=json`.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "core/proteus.hpp"

namespace proteus {

/// Fills cost.metrics from the engine-specific structs for a run on
/// `engine` ("ref", "vec" or "vm"). Clears previously published values.
void publish_metrics(RunCost& cost, std::string_view engine);

/// The classic human-readable "[stats] ..." lines for `engine`. Any
/// histograms published into cost.metrics render via
/// print_histograms_text.
void print_stats_text(std::ostream& os, const RunCost& cost,
                      const std::string& engine);

/// One "[stats] <name>: count=.. p50=.. p95=.. p99=.. min=.. max=.."
/// line per histogram in `metrics` (no output when there are none) —
/// how `proteusc --stats` renders its per-run wall-time distributions.
void print_histograms_text(std::ostream& os,
                           const obs::MetricsRegistry& metrics);

/// One JSON object for a run: {"engine": "...", "metrics": {...}}.
void write_run_json(std::ostream& os, const RunCost& cost,
                    std::string_view engine);

}  // namespace proteus
