#include "core/proteus.hpp"

#include <functional>
#include <map>
#include <utility>

#include "core/report.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "vl/check.hpp"

namespace proteus {

using interp::Value;
using interp::ValueList;
using lang::FunDef;
using lang::TypePtr;

/// Installs a Session-level tracer (when one is set) for the duration of
/// a run_* call.
using RunScope = obs::MaybeTracerScope;

/// One engine attempt of the degradation ladder (docs/ROBUSTNESS.md).
/// `run` does everything for a standalone execution — argument
/// conversion, stats reset, the run span, and metric publication — so a
/// fallback attempt starts from a clean slate and an injected fault
/// striking during conversion is absorbed by the same ladder.
struct Session::Rung {
  const char* engine;  ///< "vm", "vm-o0", "exec", or "interp"
  std::function<Value()> run;
};

Session::Session(std::string_view program_source,
                 std::string_view entry_source,
                 const xform::PipelineOptions& options)
    : compiled_(std::make_shared<const xform::Compiled>(
          xform::compile(program_source, entry_source, options))) {
  prim_options_.shared_source_gather =
      options.flatten.broadcast_invariant_seq_args;
}

Session::Session(std::shared_ptr<const xform::Compiled> compiled,
                 const xform::PipelineOptions& options)
    : compiled_(std::move(compiled)) {
  PROTEUS_REQUIRE(EvalError, compiled_ != nullptr,
                  "Session requires a non-null compiled program");
  prim_options_.shared_source_gather =
      options.flatten.broadcast_invariant_seq_args;
}

const FunDef& Session::checked_fun(const std::string& name) const {
  const FunDef* f = compiled_->checked.find(name);
  PROTEUS_REQUIRE(EvalError, f != nullptr,
                  "session has no function named '" + name + "'");
  return *f;
}

TypePtr Session::result_type(const std::string& name) const {
  return checked_fun(name).result;
}

Value Session::run_ladder(std::vector<Rung> rungs) {
  cost_ = RunCost{};
  degradations_.clear();
  RunScope tracing(tracer_);
  // One governor scope spans the whole ladder: a fallback attempt runs
  // under the same deadline and budget as the attempt it replaces.
  rt::GovernorScope governor(budget_);
  // rt.* events are buffered here and merged after publish_metrics (which
  // clears the registry) so they survive into last_cost().metrics.
  std::map<std::string, std::uint64_t> rt_events;
  auto merge_events = [&] {
    for (const auto& [name, count] : rt_events) cost_.metrics.add(name, count);
  };
  for (std::size_t i = 0;; ++i) {
    const Rung& rung = rungs[i];
    try {
      Value result = rung.run();
      merge_events();
      return result;
    } catch (const rt::RuntimeTrap& trap) {
      rt_events[std::string("rt.trap.") + trap_code(trap.trap())] += 1;
      const bool can_retry = fallback_ && i + 1 < rungs.size() &&
                             rt::retryable(trap.trap());
      if (!can_retry) {
        degradations_.push_back(std::string("trap in ") + rung.engine + ": " +
                                trap.what());
        merge_events();
        throw;
      }
      const Rung& next = rungs[i + 1];
      rt_events[std::string("rt.fallback.") + rung.engine] += 1;
      degradations_.push_back(std::string(rung.engine) + " -> " + next.engine +
                              " after " + trap.what());
      if (obs::Tracer* t = obs::tracer()) {
        t->instant("run", std::string("rt.fallback.") + rung.engine,
                   trap.what());
      }
    }
  }
}

Value Session::run_reference(const std::string& name,
                             const ValueList& args) {
  Rung rung{"interp", [this, &name, &args] {
    cost_ = RunCost{};
    interp::Interpreter interp(compiled_->checked);
    Value result;
    {
      obs::Span span("run", "run.reference");
      result = interp.call_function(name, args);
      cost_.reference = interp.stats();
      span.counter("iterations", cost_.reference.iterations);
      span.counter("scalar_ops", cost_.reference.scalar_ops);
      span.counter("calls", cost_.reference.calls);
    }
    publish_metrics(cost_, "ref");
    return result;
  }};
  std::vector<Rung> rungs;
  rungs.push_back(std::move(rung));
  return run_ladder(std::move(rungs));
}

Value Session::run_vector(const std::string& name, const ValueList& args) {
  const FunDef& f = checked_fun(name);
  PROTEUS_REQUIRE(EvalError, f.params.size() == args.size(),
                  "'" + name + "' called with wrong argument count");
  auto exec_attempt = [this, &f, &name, &args] {
    cost_ = RunCost{};
    std::vector<exec::VValue> vargs;
    vargs.reserve(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      vargs.push_back(exec::from_boxed(args[i], f.params[i].type));
    }
    exec::Executor ex(compiled_->vec, prim_options_);
    vl::reset_stats();
    exec::VValue result;
    {
      obs::Span span("run", "run.vector");
      result = ex.call_function(name, vargs);
      cost_.vector_ops = ex.stats();
      cost_.vector_work = vl::stats();
      span.counter("elements", cost_.vector_work.element_work);
      span.counter("segments", cost_.vector_work.segment_work);
      span.counter("prims", cost_.vector_work.primitive_calls);
      span.counter("calls", cost_.vector_ops.calls);
    }
    publish_metrics(cost_, "vec");
    return exec::to_boxed(result, f.result);
  };
  auto interp_attempt = [this, &name, &args] {
    cost_ = RunCost{};
    interp::Interpreter interp(compiled_->checked);
    Value result;
    {
      obs::Span span("run", "run.reference");
      result = interp.call_function(name, args);
      cost_.reference = interp.stats();
    }
    publish_metrics(cost_, "ref");
    return result;
  };
  std::vector<Rung> rungs;
  rungs.push_back({"exec", exec_attempt});
  rungs.push_back({"interp", interp_attempt});
  return run_ladder(std::move(rungs));
}

Value Session::run_vm(const std::string& name, const ValueList& args) {
  const FunDef& f = checked_fun(name);
  PROTEUS_REQUIRE(EvalError, f.params.size() == args.size(),
                  "'" + name + "' called with wrong argument count");
  auto vm_attempt = [this, &f, &name, &args](
                        const std::shared_ptr<const vm::Module>& module) {
    cost_ = RunCost{};
    std::vector<exec::VValue> vargs;
    vargs.reserve(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      vargs.push_back(exec::from_boxed(args[i], f.params[i].type));
    }
    // The pipeline already bytecode-verified the module at assembly
    // time; re-verifying on every run would tax the dispatch benches.
    vm::VM machine(module, {prim_options_, vm_profile_, /*verify=*/false,
                            vm_arena_, vm_admission_});
    vl::reset_stats();
    exec::VValue result;
    {
      obs::Span span("run", "run.vm");
      result = machine.call_function(name, std::move(vargs));
      cost_.vm_ops = machine.stats();
      cost_.vector_work = vl::stats();
      span.counter("elements", cost_.vector_work.element_work);
      span.counter("segments", cost_.vector_work.segment_work);
      span.counter("instructions", cost_.vm_ops.instructions);
      span.counter("calls", cost_.vm_ops.calls);
    }
    publish_metrics(cost_, "vm");
    return exec::to_boxed(result, f.result);
  };
  auto exec_attempt = [this, &f, &name, &args] {
    cost_ = RunCost{};
    std::vector<exec::VValue> vargs;
    vargs.reserve(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      vargs.push_back(exec::from_boxed(args[i], f.params[i].type));
    }
    exec::Executor ex(compiled_->vec, prim_options_);
    vl::reset_stats();
    exec::VValue result;
    {
      obs::Span span("run", "run.vector");
      result = ex.call_function(name, vargs);
      cost_.vector_ops = ex.stats();
      cost_.vector_work = vl::stats();
    }
    publish_metrics(cost_, "vec");
    return exec::to_boxed(result, f.result);
  };
  auto interp_attempt = [this, &name, &args] {
    cost_ = RunCost{};
    interp::Interpreter interp(compiled_->checked);
    Value result;
    {
      obs::Span span("run", "run.reference");
      result = interp.call_function(name, args);
      cost_.reference = interp.stats();
    }
    publish_metrics(cost_, "ref");
    return result;
  };
  std::vector<Rung> rungs;
  rungs.push_back({"vm", [vm_attempt, this] {
    return vm_attempt(compiled_->module);
  }});
  if (compiled_->module_o0 != nullptr &&
      compiled_->module_o0 != compiled_->module) {
    rungs.push_back({"vm-o0", [vm_attempt, this] {
      return vm_attempt(compiled_->module_o0);
    }});
  }
  rungs.push_back({"exec", exec_attempt});
  rungs.push_back({"interp", interp_attempt});
  return run_ladder(std::move(rungs));
}

Value Session::run_entry_reference() {
  PROTEUS_REQUIRE(EvalError, compiled_->entry_checked != nullptr,
                  "session was created without an entry expression");
  Rung rung{"interp", [this] {
    cost_ = RunCost{};
    interp::Interpreter interp(compiled_->checked);
    Value result;
    {
      obs::Span span("run", "run.reference");
      result = interp.eval(compiled_->entry_checked);
      cost_.reference = interp.stats();
      span.counter("iterations", cost_.reference.iterations);
      span.counter("scalar_ops", cost_.reference.scalar_ops);
      span.counter("calls", cost_.reference.calls);
    }
    publish_metrics(cost_, "ref");
    return result;
  }};
  std::vector<Rung> rungs;
  rungs.push_back(std::move(rung));
  return run_ladder(std::move(rungs));
}

Value Session::run_entry_vector() {
  PROTEUS_REQUIRE(EvalError, compiled_->entry_vec != nullptr,
                  "session was created without an entry expression");
  auto exec_attempt = [this] {
    cost_ = RunCost{};
    exec::Executor ex(compiled_->vec, prim_options_);
    vl::reset_stats();
    exec::VValue result;
    {
      obs::Span span("run", "run.vector");
      result = ex.eval(compiled_->entry_vec);
      cost_.vector_ops = ex.stats();
      cost_.vector_work = vl::stats();
      span.counter("elements", cost_.vector_work.element_work);
      span.counter("segments", cost_.vector_work.segment_work);
      span.counter("prims", cost_.vector_work.primitive_calls);
      span.counter("calls", cost_.vector_ops.calls);
    }
    publish_metrics(cost_, "vec");
    return exec::to_boxed(result, compiled_->entry_checked->type);
  };
  auto interp_attempt = [this] {
    cost_ = RunCost{};
    interp::Interpreter interp(compiled_->checked);
    Value result;
    {
      obs::Span span("run", "run.reference");
      result = interp.eval(compiled_->entry_checked);
      cost_.reference = interp.stats();
    }
    publish_metrics(cost_, "ref");
    return result;
  };
  std::vector<Rung> rungs;
  rungs.push_back({"exec", exec_attempt});
  rungs.push_back({"interp", interp_attempt});
  return run_ladder(std::move(rungs));
}

Value Session::run_entry_vm() {
  PROTEUS_REQUIRE(EvalError, compiled_->entry_vec != nullptr,
                  "session was created without an entry expression");
  auto vm_attempt = [this](const std::shared_ptr<const vm::Module>& module) {
    cost_ = RunCost{};
    // The pipeline already bytecode-verified the module at assembly
    // time; re-verifying on every run would tax the dispatch benches.
    vm::VM machine(module, {prim_options_, vm_profile_, /*verify=*/false,
                            vm_arena_, vm_admission_});
    vl::reset_stats();
    exec::VValue result;
    {
      obs::Span span("run", "run.vm");
      result = machine.eval_entry();
      cost_.vm_ops = machine.stats();
      cost_.vector_work = vl::stats();
      span.counter("elements", cost_.vector_work.element_work);
      span.counter("segments", cost_.vector_work.segment_work);
      span.counter("instructions", cost_.vm_ops.instructions);
      span.counter("calls", cost_.vm_ops.calls);
    }
    publish_metrics(cost_, "vm");
    return exec::to_boxed(result, compiled_->entry_checked->type);
  };
  auto exec_attempt = [this] {
    cost_ = RunCost{};
    exec::Executor ex(compiled_->vec, prim_options_);
    vl::reset_stats();
    exec::VValue result;
    {
      obs::Span span("run", "run.vector");
      result = ex.eval(compiled_->entry_vec);
      cost_.vector_ops = ex.stats();
      cost_.vector_work = vl::stats();
    }
    publish_metrics(cost_, "vec");
    return exec::to_boxed(result, compiled_->entry_checked->type);
  };
  auto interp_attempt = [this] {
    cost_ = RunCost{};
    interp::Interpreter interp(compiled_->checked);
    Value result;
    {
      obs::Span span("run", "run.reference");
      result = interp.eval(compiled_->entry_checked);
      cost_.reference = interp.stats();
    }
    publish_metrics(cost_, "ref");
    return result;
  };
  std::vector<Rung> rungs;
  rungs.push_back({"vm", [vm_attempt, this] {
    return vm_attempt(compiled_->module);
  }});
  if (compiled_->module_o0 != nullptr &&
      compiled_->module_o0 != compiled_->module) {
    rungs.push_back({"vm-o0", [vm_attempt, this] {
      return vm_attempt(compiled_->module_o0);
    }});
  }
  rungs.push_back({"exec", exec_attempt});
  rungs.push_back({"interp", interp_attempt});
  return run_ladder(std::move(rungs));
}

ModuleRunner::ModuleRunner(std::shared_ptr<const vm::Module> module)
    : module_(std::move(module)) {
  PROTEUS_REQUIRE(EvalError, module_ != nullptr,
                  "ModuleRunner requires a non-null module");
}

Value ModuleRunner::run(const std::string& name, const ValueList& args) {
  auto it = module_->fn_index.find(name);
  PROTEUS_REQUIRE(EvalError, it != module_->fn_index.end(),
                  "module has no function named '" + name + "'");
  return run_at(it->second, args);
}

Value ModuleRunner::run_entry() {
  PROTEUS_REQUIRE(EvalError, module_->entry >= 0,
                  "module was compiled without an entry expression");
  return run_at(static_cast<std::uint32_t>(module_->entry), {});
}

Value ModuleRunner::run_at(std::uint32_t index, const ValueList& args) {
  const vm::Signature* sig = module_->signature(index);
  const std::string& name = module_->functions[index].name;
  PROTEUS_REQUIRE(EvalError, sig != nullptr,
                  "module carries no calling convention for '" + name +
                      "' (internal functions are not callable)");
  PROTEUS_REQUIRE(EvalError, sig->params.size() == args.size(),
                  "'" + name + "' called with wrong argument count");
  cost_ = RunCost{};
  RunScope tracing(tracer_);
  rt::GovernorScope governor(budget_);
  std::vector<exec::VValue> vargs;
  vargs.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    vargs.push_back(exec::from_boxed(args[i], sig->params[i]));
  }
  // Verification happened at load (vm::load_module); re-verifying per run
  // would defeat the point of caching the module.
  vm::VM machine(module_, {prim_options_, /*profile=*/false,
                           /*verify=*/false, vm_arena_, vm_admission_});
  vl::reset_stats();
  exec::VValue result;
  {
    obs::Span span("run", "run.vm");
    result = machine.call_function(name, std::move(vargs));
    cost_.vm_ops = machine.stats();
    cost_.vector_work = vl::stats();
    span.counter("elements", cost_.vector_work.element_work);
    span.counter("segments", cost_.vector_work.segment_work);
    span.counter("instructions", cost_.vm_ops.instructions);
    span.counter("calls", cost_.vm_ops.calls);
  }
  publish_metrics(cost_, "vm");
  return exec::to_boxed(result, sig->result);
}

Value parse_value(std::string_view literal) {
  lang::ExprPtr expr = lang::parse_expression(literal);
  lang::Program empty;
  lang::ExprPtr typed = lang::typecheck_expression(empty, expr);
  interp::Interpreter interp(empty);
  return interp.eval(typed);
}

}  // namespace proteus
