#include "core/proteus.hpp"

#include <utility>

#include "core/report.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "vl/check.hpp"

namespace proteus {

using interp::Value;
using interp::ValueList;
using lang::FunDef;
using lang::TypePtr;

/// Installs a Session-level tracer (when one is set) for the duration of
/// a run_* call.
using RunScope = obs::MaybeTracerScope;

Session::Session(std::string_view program_source,
                 std::string_view entry_source,
                 const xform::PipelineOptions& options)
    : compiled_(xform::compile(program_source, entry_source, options)) {
  prim_options_.shared_source_gather =
      options.flatten.broadcast_invariant_seq_args;
}

const FunDef& Session::checked_fun(const std::string& name) const {
  const FunDef* f = compiled_.checked.find(name);
  PROTEUS_REQUIRE(EvalError, f != nullptr,
                  "session has no function named '" + name + "'");
  return *f;
}

TypePtr Session::result_type(const std::string& name) const {
  return checked_fun(name).result;
}

Value Session::run_reference(const std::string& name,
                             const ValueList& args) {
  cost_ = RunCost{};
  RunScope tracing(tracer_);
  interp::Interpreter interp(compiled_.checked);
  Value result;
  {
    obs::Span span("run", "run.reference");
    result = interp.call_function(name, args);
    cost_.reference = interp.stats();
    span.counter("iterations", cost_.reference.iterations);
    span.counter("scalar_ops", cost_.reference.scalar_ops);
    span.counter("calls", cost_.reference.calls);
  }
  publish_metrics(cost_, "ref");
  return result;
}

Value Session::run_vector(const std::string& name, const ValueList& args) {
  const FunDef& f = checked_fun(name);
  PROTEUS_REQUIRE(EvalError, f.params.size() == args.size(),
                  "'" + name + "' called with wrong argument count");
  cost_ = RunCost{};
  RunScope tracing(tracer_);
  std::vector<exec::VValue> vargs;
  vargs.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    vargs.push_back(exec::from_boxed(args[i], f.params[i].type));
  }
  exec::Executor ex(compiled_.vec, prim_options_);
  vl::reset_stats();
  exec::VValue result;
  {
    obs::Span span("run", "run.vector");
    result = ex.call_function(name, vargs);
    cost_.vector_ops = ex.stats();
    cost_.vector_work = vl::stats();
    span.counter("elements", cost_.vector_work.element_work);
    span.counter("segments", cost_.vector_work.segment_work);
    span.counter("prims", cost_.vector_work.primitive_calls);
    span.counter("calls", cost_.vector_ops.calls);
  }
  publish_metrics(cost_, "vec");
  return exec::to_boxed(result, f.result);
}

Value Session::run_vm(const std::string& name, const ValueList& args) {
  const FunDef& f = checked_fun(name);
  PROTEUS_REQUIRE(EvalError, f.params.size() == args.size(),
                  "'" + name + "' called with wrong argument count");
  cost_ = RunCost{};
  RunScope tracing(tracer_);
  std::vector<exec::VValue> vargs;
  vargs.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    vargs.push_back(exec::from_boxed(args[i], f.params[i].type));
  }
  // The pipeline already bytecode-verified the module at assembly
  // time; re-verifying on every run would tax the dispatch benches.
  vm::VM machine(compiled_.module,
                 {prim_options_, vm_profile_, /*verify=*/false});
  vl::reset_stats();
  exec::VValue result;
  {
    obs::Span span("run", "run.vm");
    result = machine.call_function(name, std::move(vargs));
    cost_.vm_ops = machine.stats();
    cost_.vector_work = vl::stats();
    span.counter("elements", cost_.vector_work.element_work);
    span.counter("segments", cost_.vector_work.segment_work);
    span.counter("instructions", cost_.vm_ops.instructions);
    span.counter("calls", cost_.vm_ops.calls);
  }
  publish_metrics(cost_, "vm");
  return exec::to_boxed(result, f.result);
}

Value Session::run_entry_reference() {
  PROTEUS_REQUIRE(EvalError, compiled_.entry_checked != nullptr,
                  "session was created without an entry expression");
  cost_ = RunCost{};
  RunScope tracing(tracer_);
  interp::Interpreter interp(compiled_.checked);
  Value result;
  {
    obs::Span span("run", "run.reference");
    result = interp.eval(compiled_.entry_checked);
    cost_.reference = interp.stats();
    span.counter("iterations", cost_.reference.iterations);
    span.counter("scalar_ops", cost_.reference.scalar_ops);
    span.counter("calls", cost_.reference.calls);
  }
  publish_metrics(cost_, "ref");
  return result;
}

Value Session::run_entry_vector() {
  PROTEUS_REQUIRE(EvalError, compiled_.entry_vec != nullptr,
                  "session was created without an entry expression");
  cost_ = RunCost{};
  RunScope tracing(tracer_);
  exec::Executor ex(compiled_.vec, prim_options_);
  vl::reset_stats();
  exec::VValue result;
  {
    obs::Span span("run", "run.vector");
    result = ex.eval(compiled_.entry_vec);
    cost_.vector_ops = ex.stats();
    cost_.vector_work = vl::stats();
    span.counter("elements", cost_.vector_work.element_work);
    span.counter("segments", cost_.vector_work.segment_work);
    span.counter("prims", cost_.vector_work.primitive_calls);
    span.counter("calls", cost_.vector_ops.calls);
  }
  publish_metrics(cost_, "vec");
  return exec::to_boxed(result, compiled_.entry_checked->type);
}

Value Session::run_entry_vm() {
  PROTEUS_REQUIRE(EvalError, compiled_.entry_vec != nullptr,
                  "session was created without an entry expression");
  cost_ = RunCost{};
  RunScope tracing(tracer_);
  // The pipeline already bytecode-verified the module at assembly
  // time; re-verifying on every run would tax the dispatch benches.
  vm::VM machine(compiled_.module,
                 {prim_options_, vm_profile_, /*verify=*/false});
  vl::reset_stats();
  exec::VValue result;
  {
    obs::Span span("run", "run.vm");
    result = machine.eval_entry();
    cost_.vm_ops = machine.stats();
    cost_.vector_work = vl::stats();
    span.counter("elements", cost_.vector_work.element_work);
    span.counter("segments", cost_.vector_work.segment_work);
    span.counter("instructions", cost_.vm_ops.instructions);
    span.counter("calls", cost_.vm_ops.calls);
  }
  publish_metrics(cost_, "vm");
  return exec::to_boxed(result, compiled_.entry_checked->type);
}

Value parse_value(std::string_view literal) {
  lang::ExprPtr expr = lang::parse_expression(literal);
  lang::Program empty;
  lang::ExprPtr typed = lang::typecheck_expression(empty, expr);
  interp::Interpreter interp(empty);
  return interp.eval(typed);
}

}  // namespace proteus
