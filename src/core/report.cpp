#include "core/report.hpp"

namespace proteus {

namespace {

void publish_vl(obs::MetricsRegistry& m, const vl::VectorStats& s) {
  m.set("vl.primitive_calls", s.primitive_calls);
  m.set("vl.element_work", s.element_work);
  m.set("vl.segment_work", s.segment_work);
  m.set("vl.buffer_allocs", s.buffer_allocs);
  m.set("vl.arena.recycled", s.arena_recycled);
  m.set("vl.arena.heap_fallbacks", s.arena_heap_fallbacks);
  m.set("vl.arena.slots", s.arena_slots);
  m.set("vl.arena.bytes_planned", s.arena_bytes_planned);
}

void publish_per_prim(obs::MetricsRegistry& m, std::string_view prefix,
                      const std::map<lang::Prim, std::uint64_t>& per_prim) {
  for (const auto& [op, count] : per_prim) {
    m.set(std::string(prefix) + lang::prim_name(op), count);
  }
}

}  // namespace

void publish_metrics(RunCost& cost, std::string_view engine) {
  obs::MetricsRegistry& m = cost.metrics;
  m.clear();
  if (engine == "ref") {
    m.set("ref.iterations", cost.reference.iterations);
    m.set("ref.scalar_ops", cost.reference.scalar_ops);
    m.set("ref.steps", cost.reference.steps);
    m.set("ref.calls", cost.reference.calls);
    return;
  }
  if (engine == "vec") {
    m.set("vec.calls", cost.vector_ops.calls);
    m.set("vec.prim_applications", cost.vector_ops.prim_applications);
    publish_per_prim(m, "vec.prim.", cost.vector_ops.per_prim);
    publish_vl(m, cost.vector_work);
    return;
  }
  if (engine == "vm") {
    m.set("vm.calls", cost.vm_ops.calls);
    m.set("vm.instructions", cost.vm_ops.instructions);
    m.set("vm.prim_applications", cost.vm_ops.prim_applications);
    publish_per_prim(m, "vm.prim.", cost.vm_ops.per_prim);
    for (int i = 0; i < vm::kNumOps; ++i) {
      const vm::OpProfile& p = cost.vm_ops.per_op[static_cast<std::size_t>(i)];
      if (p.count == 0) continue;
      const std::string base =
          std::string("vm.op.") + vm::op_name(static_cast<vm::Op>(i));
      m.set(base + ".count", p.count);
      m.set(base + ".work", p.element_work);
      if (p.nanos != 0) m.set(base + ".ns", p.nanos);
    }
    publish_vl(m, cost.vector_work);
    return;
  }
}

void print_stats_text(std::ostream& os, const RunCost& cost,
                      const std::string& engine) {
  if (engine == "ref") {
    os << "[stats] iterator iterations: " << cost.reference.iterations
       << ", scalar ops (work): " << cost.reference.scalar_ops
       << ", steps (critical path): " << cost.reference.steps
       << ", user calls: " << cost.reference.calls << '\n';
    return;
  }
  os << "[stats] vector primitives: " << cost.vector_work.primitive_calls
     << ", element work: " << cost.vector_work.element_work
     << ", segment work: " << cost.vector_work.segment_work
     << ", buffer allocs: " << cost.vector_work.buffer_allocs
     << ", user calls: "
     << (engine == "vm" ? cost.vm_ops.calls : cost.vector_ops.calls) << '\n';
  os << "[stats] instruction mix:";
  const auto& per_prim =
      engine == "vm" ? cost.vm_ops.per_prim : cost.vector_ops.per_prim;
  for (const auto& [op, count] : per_prim) {
    os << ' ' << lang::prim_name(op) << '=' << count;
  }
  os << '\n';
  if (engine == "vm") {
    os << "[stats] vm instructions: " << cost.vm_ops.instructions
       << "; per-opcode count/work/us:";
    for (int i = 0; i < vm::kNumOps; ++i) {
      const vm::OpProfile& p = cost.vm_ops.per_op[static_cast<std::size_t>(i)];
      if (p.count == 0) continue;
      os << ' ' << vm::op_name(static_cast<vm::Op>(i)) << '=' << p.count
         << '/' << p.element_work << '/' << p.nanos / 1000;
    }
    os << '\n';
  }
  print_histograms_text(os, cost.metrics);
}

void print_histograms_text(std::ostream& os,
                           const obs::MetricsRegistry& metrics) {
  for (const auto& [name, h] : metrics.histograms()) {
    os << "[stats] " << name << ": count=" << h.count() << " p50=" << h.p50()
       << " p95=" << h.p95() << " p99=" << h.p99() << " min=" << h.min()
       << " max=" << h.max() << '\n';
  }
}

void write_run_json(std::ostream& os, const RunCost& cost,
                    std::string_view engine) {
  os << "{\"engine\":\"" << obs::json_escape(engine) << "\",\"metrics\":";
  cost.metrics.write_json(os);
  os << '}';
}

}  // namespace proteus
