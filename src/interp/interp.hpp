// interp.hpp — the reference interpreter: the paper's "parallel semantics
// simulated sequentially".
//
// The interpreter executes checked programs directly, realizing the
// iterator's per-element semantics with an ordinary loop. It also
// understands the transformed (V-form) constructs — depth-extended calls,
// extract/insert/empty_frame/any_true — by generic elementwise mapping
// over boxed frames, which gives the test suite a second, independent
// oracle for transformed programs.
//
// It additionally tallies the machine-independent cost measures Proteus
// prototyping is about (total work, iterator iterations, call count),
// which the Section 6 benches compare against vector-model work.
#pragma once

#include <cstdint>

#include "interp/value.hpp"
#include "lang/ast.hpp"

namespace proteus::interp {

/// Machine-independent cost counters — the measurements the paper says
/// Proteus prototyping is for: "total work and available concurrency".
/// `steps` is the critical path under the iterator's parallel semantics
/// (iterations of one iterator count as max, not sum); work/steps is the
/// available concurrency.
struct InterpStats {
  std::uint64_t scalar_ops = 0;   ///< primitive applications (total work)
  std::uint64_t steps = 0;        ///< parallel critical path
  std::uint64_t iterations = 0;   ///< iterator body evaluations
  std::uint64_t calls = 0;        ///< user-function invocations
};

// Call depth and per-expression nesting are bounded by the execution
// governor (rt::depth_limit() / rt::nesting_limit()); runaway recursion
// and adversarially deep ASTs raise rt::RuntimeTrap (T003) instead of
// overrunning the C++ stack.

class Interpreter {
 public:
  /// `program` must be type-checked (all calls resolved).
  explicit Interpreter(const lang::Program& program) : program_(program) {}

  /// Calls function `name` with the given argument values.
  [[nodiscard]] Value call_function(const std::string& name,
                                    const ValueList& args);

  /// Evaluates a closed, type-checked expression.
  [[nodiscard]] Value eval(const lang::ExprPtr& expr);

  [[nodiscard]] InterpStats& stats() { return stats_; }
  void reset_stats() { stats_ = InterpStats{}; }

 private:
  friend class Eval;
  const lang::Program& program_;
  InterpStats stats_;
  int call_depth_ = 0;
  int eval_depth_ = 0;  ///< structural recursion within one function body
};

}  // namespace proteus::interp
