// value.hpp — boxed runtime values for the reference interpreter.
//
// The interpreter realizes the paper's "parallel semantics simulated
// sequentially": values are ordinary boxed trees (a nested sequence is a
// vector of element values). The vector-model executor uses the flat
// representation instead (seq::Array); conversions between the two guided
// by a static type live here so differential tests can compare engines.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "lang/types.hpp"
#include "seq/nested.hpp"
#include "vl/vec.hpp"

namespace proteus::interp {

using vl::Int;
using vl::Real;
using vl::Size;

class Value;
using ValueList = std::vector<Value>;

/// A boxed runtime value: scalar, sequence (vector of boxed elements),
/// tuple, or function (named, fully parameterized). Cheap to copy
/// (sequences and tuples share their element storage).
class Value {
 public:
  Value() : node_(Int{0}) {}

  static Value ints(Int v) { return Value(v); }
  static Value reals(Real v) { return Value(v); }
  static Value bools(bool v) { return Value(v); }
  static Value seq(ValueList elems);
  static Value tuple(ValueList elems);
  static Value fun(std::string name);

  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<Int>(node_);
  }
  [[nodiscard]] bool is_real() const {
    return std::holds_alternative<Real>(node_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(node_);
  }
  [[nodiscard]] bool is_seq() const {
    return std::holds_alternative<Seq>(node_);
  }
  [[nodiscard]] bool is_tuple() const {
    return std::holds_alternative<Tuple>(node_);
  }
  [[nodiscard]] bool is_fun() const {
    return std::holds_alternative<Fun>(node_);
  }

  /// Accessors throw EvalError when the kind does not match.
  [[nodiscard]] Int as_int() const;
  [[nodiscard]] Real as_real() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const ValueList& as_seq() const;
  [[nodiscard]] const ValueList& as_tuple() const;
  [[nodiscard]] const std::string& fun_name() const;

  /// Deep structural equality. Function values compare by name.
  friend bool operator==(const Value& a, const Value& b);

 private:
  struct Seq {
    std::shared_ptr<const ValueList> elems;
  };
  struct Tuple {
    std::shared_ptr<const ValueList> elems;
  };
  struct Fun {
    std::shared_ptr<const std::string> name;
  };

  explicit Value(Int v) : node_(v) {}
  explicit Value(Real v) : node_(v) {}
  explicit Value(bool v) : node_(v) {}
  explicit Value(Seq s) : node_(std::move(s)) {}
  explicit Value(Tuple t) : node_(std::move(t)) {}
  explicit Value(Fun f) : node_(std::move(f)) {}

  std::variant<Int, Real, bool, Seq, Tuple, Fun> node_;
};

/// Renders a value in P literal syntax.
[[nodiscard]] std::string to_text(const Value& v);

std::ostream& operator<<(std::ostream& os, const Value& v);

// --- conversions boxed <-> flat representation --------------------------------

/// Boxed value -> flat representation of the one-element sequence [v]?
/// No: converts a *sequence-typed* boxed value into its Array-of-elements
/// representation. `type` is the sequence's static type (needed to give
/// empty sequences their element structure).
[[nodiscard]] seq::Array to_array(const Value& v, const lang::TypePtr& type);

/// Flat representation (element array of a sequence of static type `type`)
/// -> boxed sequence value.
[[nodiscard]] Value from_array(const seq::Array& a,
                               const lang::TypePtr& type);

}  // namespace proteus::interp
