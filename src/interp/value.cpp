#include "interp/value.hpp"

#include <sstream>

#include "vl/check.hpp"

namespace proteus::interp {

using lang::Type;
using lang::TypeKind;
using lang::TypePtr;

Value Value::seq(ValueList elems) {
  return Value(Seq{std::make_shared<const ValueList>(std::move(elems))});
}

Value Value::tuple(ValueList elems) {
  PROTEUS_REQUIRE(EvalError, !elems.empty(), "tuple value with no components");
  return Value(Tuple{std::make_shared<const ValueList>(std::move(elems))});
}

Value Value::fun(std::string name) {
  return Value(Fun{std::make_shared<const std::string>(std::move(name))});
}

Int Value::as_int() const {
  const Int* v = std::get_if<Int>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "value is not an int");
  return *v;
}

Real Value::as_real() const {
  const Real* v = std::get_if<Real>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "value is not a real");
  return *v;
}

bool Value::as_bool() const {
  const bool* v = std::get_if<bool>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "value is not a bool");
  return *v;
}

const ValueList& Value::as_seq() const {
  const Seq* v = std::get_if<Seq>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "value is not a sequence");
  return *v->elems;
}

const ValueList& Value::as_tuple() const {
  const Tuple* v = std::get_if<Tuple>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "value is not a tuple");
  return *v->elems;
}

const std::string& Value::fun_name() const {
  const Fun* v = std::get_if<Fun>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "value is not a function");
  return *v->name;
}

bool operator==(const Value& a, const Value& b) {
  if (a.node_.index() != b.node_.index()) return false;
  if (a.is_int()) return a.as_int() == b.as_int();
  if (a.is_real()) return a.as_real() == b.as_real();
  if (a.is_bool()) return a.as_bool() == b.as_bool();
  if (a.is_fun()) return a.fun_name() == b.fun_name();
  const ValueList& xs = a.is_seq() ? a.as_seq() : a.as_tuple();
  const ValueList& ys = b.is_seq() ? b.as_seq() : b.as_tuple();
  if (xs.size() != ys.size()) return false;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!(xs[i] == ys[i])) return false;
  }
  return true;
}

namespace {

void render(const Value& v, std::ostream& os) {
  if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_real()) {
    os << v.as_real();
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_fun()) {
    os << '<' << v.fun_name() << '>';
  } else if (v.is_seq()) {
    os << '[';
    const ValueList& xs = v.as_seq();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) os << ',';
      render(xs[i], os);
    }
    os << ']';
  } else {
    os << '(';
    const ValueList& xs = v.as_tuple();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) os << ',';
      render(xs[i], os);
    }
    os << ')';
  }
}

}  // namespace

std::string to_text(const Value& v) {
  std::ostringstream os;
  render(v, os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  render(v, os);
  return os;
}

namespace {

/// Builds the Array representing `elems` whose common static type is
/// `elem_type`.
seq::Array elements_to_array(const ValueList& elems,
                             const TypePtr& elem_type) {
  switch (elem_type->kind()) {
    case TypeKind::kInt: {
      vl::IntVec v(static_cast<Size>(elems.size()));
      for (std::size_t i = 0; i < elems.size(); ++i) {
        v[static_cast<Size>(i)] = elems[i].as_int();
      }
      return seq::Array::ints(std::move(v));
    }
    case TypeKind::kReal: {
      vl::RealVec v(static_cast<Size>(elems.size()));
      for (std::size_t i = 0; i < elems.size(); ++i) {
        v[static_cast<Size>(i)] = elems[i].as_real();
      }
      return seq::Array::reals(std::move(v));
    }
    case TypeKind::kBool: {
      vl::BoolVec v(static_cast<Size>(elems.size()));
      for (std::size_t i = 0; i < elems.size(); ++i) {
        v[static_cast<Size>(i)] = vl::Bool(elems[i].as_bool() ? 1 : 0);
      }
      return seq::Array::bools(std::move(v));
    }
    case TypeKind::kSeq: {
      vl::IntVec lengths(static_cast<Size>(elems.size()));
      ValueList flat;
      for (std::size_t i = 0; i < elems.size(); ++i) {
        const ValueList& inner = elems[i].as_seq();
        lengths[static_cast<Size>(i)] = static_cast<Int>(inner.size());
        flat.insert(flat.end(), inner.begin(), inner.end());
      }
      return seq::Array::nested(std::move(lengths),
                                elements_to_array(flat, elem_type->elem()));
    }
    case TypeKind::kTuple: {
      const auto& comp_types = elem_type->components();
      std::vector<seq::Array> comps;
      comps.reserve(comp_types.size());
      for (std::size_t c = 0; c < comp_types.size(); ++c) {
        ValueList column;
        column.reserve(elems.size());
        for (const Value& e : elems) {
          const ValueList& tup = e.as_tuple();
          PROTEUS_REQUIRE(EvalError, tup.size() == comp_types.size(),
                          "tuple arity mismatch in conversion");
          column.push_back(tup[c]);
        }
        comps.push_back(elements_to_array(column, comp_types[c]));
      }
      return seq::Array::tuple(std::move(comps));
    }
    case TypeKind::kFun:
      throw EvalError(
          "sequences of function values have no flat representation");
  }
  throw EvalError("corrupt type in conversion");
}

ValueList array_to_elements(const seq::Array& a, const TypePtr& elem_type) {
  ValueList out;
  const Size n = a.length();
  out.reserve(static_cast<std::size_t>(n));
  switch (elem_type->kind()) {
    case TypeKind::kInt: {
      const vl::IntVec& v = a.int_values();
      for (Size i = 0; i < n; ++i) out.push_back(Value::ints(v[i]));
      return out;
    }
    case TypeKind::kReal: {
      const vl::RealVec& v = a.real_values();
      for (Size i = 0; i < n; ++i) out.push_back(Value::reals(v[i]));
      return out;
    }
    case TypeKind::kBool: {
      const vl::BoolVec& v = a.bool_values();
      for (Size i = 0; i < n; ++i) out.push_back(Value::bools(v[i] != 0));
      return out;
    }
    case TypeKind::kSeq: {
      const vl::IntVec& lens = a.lengths();
      ValueList flat = array_to_elements(a.inner(), elem_type->elem());
      std::size_t pos = 0;
      for (Size i = 0; i < n; ++i) {
        ValueList inner(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                        flat.begin() + static_cast<std::ptrdiff_t>(
                                           pos + std::size_t(lens[i])));
        pos += std::size_t(lens[i]);
        out.push_back(Value::seq(std::move(inner)));
      }
      return out;
    }
    case TypeKind::kTuple: {
      const auto& comp_types = elem_type->components();
      const auto& comps = a.components();
      PROTEUS_REQUIRE(EvalError, comps.size() == comp_types.size(),
                      "tuple arity mismatch in conversion");
      std::vector<ValueList> columns;
      for (std::size_t c = 0; c < comps.size(); ++c) {
        columns.push_back(array_to_elements(comps[c], comp_types[c]));
      }
      for (Size i = 0; i < n; ++i) {
        ValueList tup;
        for (auto& col : columns) tup.push_back(col[std::size_t(i)]);
        out.push_back(Value::tuple(std::move(tup)));
      }
      return out;
    }
    case TypeKind::kFun:
      throw EvalError(
          "sequences of function values have no flat representation");
  }
  throw EvalError("corrupt type in conversion");
}

}  // namespace

seq::Array to_array(const Value& v, const TypePtr& type) {
  PROTEUS_REQUIRE(EvalError, type != nullptr && type->is_seq(),
                  "to_array requires a sequence type");
  return elements_to_array(v.as_seq(), type->elem());
}

Value from_array(const seq::Array& a, const TypePtr& type) {
  PROTEUS_REQUIRE(EvalError, type != nullptr && type->is_seq(),
                  "from_array requires a sequence type");
  return Value::seq(array_to_elements(a, type->elem()));
}

}  // namespace proteus::interp
