#include "interp/interp.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <span>
#include <utility>

#include "rt/governor.hpp"
#include "vl/check.hpp"

namespace proteus::interp {

using lang::Expr;
using lang::ExprPtr;
using lang::FunDef;
using lang::Prim;
using lang::TypePtr;

namespace {

/// Lexically scoped environment: a simple binding stack.
class Env {
 public:
  void push(const std::string& name, Value v) {
    bindings_.emplace_back(name, std::move(v));
  }
  void pop(std::size_t count = 1) {
    bindings_.resize(bindings_.size() - count);
  }
  [[nodiscard]] const Value* lookup(const std::string& name) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }
  [[nodiscard]] std::size_t size() const { return bindings_.size(); }
  void truncate(std::size_t n) { bindings_.resize(n); }

 private:
  std::vector<std::pair<std::string, Value>> bindings_;
};

[[noreturn]] void eval_fail(const std::string& msg) { throw EvalError(msg); }

Int checked_index(Int i, Size n) {
  if (i < 1 || i > n) {
    eval_fail("seq_index: index " + std::to_string(i) +
              " out of range for sequence of length " + std::to_string(n));
  }
  return i - 1;  // to 0-origin
}

class Eval {
 public:
  Eval(const lang::Program& program, InterpStats& stats, int& call_depth,
       int& eval_depth)
      : program_(program), stats_(stats), call_depth_(call_depth),
        eval_depth_(eval_depth) {}

  Value expr(const ExprPtr& e, Env& env) {
    // Cooperative governor check per node (cancellation/deadline), plus a
    // structural-nesting bound so adversarially deep ASTs trap instead of
    // overrunning the C++ stack.
    rt::poll("interp");
    rt::NestingGuard nesting(&eval_depth_, "interp");
    return std::visit([&](const auto& node) { return eval_node(node, e, env); },
                      e->node);
  }

  Value call(const std::string& name, const ValueList& args) {
    const FunDef* f = program_.find(name);
    if (f == nullptr) eval_fail("call to unknown function '" + name + "'");
    if (f->params.size() != args.size()) {
      eval_fail("'" + name + "' expects " + std::to_string(f->params.size()) +
                " arguments, got " + std::to_string(args.size()));
    }
    if (++call_depth_ > rt::depth_limit()) {
      --call_depth_;
      rt::raise(rt::Trap::kDepth, "call depth limit exceeded in '" + name +
                                      "' (runaway recursion?)",
                "interp");
    }
    stats_.calls += 1;
    Env env;
    for (std::size_t i = 0; i < args.size(); ++i) {
      env.push(f->params[i].name, args[i]);
    }
    // Nesting is per function body (see exec.cpp: the C++ stack burned is
    // bounded by call_depth * per-body nesting).
    const int outer_nesting = std::exchange(eval_depth_, 0);
    Value result = expr(f->body, env);
    eval_depth_ = outer_nesting;
    --call_depth_;
    return result;
  }

 private:
  // --- node cases -------------------------------------------------------------

  Value eval_node(const lang::IntLit& n, const ExprPtr&, Env&) {
    return Value::ints(n.value);
  }
  Value eval_node(const lang::RealLit& n, const ExprPtr&, Env&) {
    return Value::reals(n.value);
  }
  Value eval_node(const lang::BoolLit& n, const ExprPtr&, Env&) {
    return Value::bools(n.value);
  }

  Value eval_node(const lang::VarRef& n, const ExprPtr&, Env& env) {
    if (!n.is_function) {
      const Value* v = env.lookup(n.name);
      if (v != nullptr) return *v;
    }
    if (program_.contains(n.name)) return Value::fun(n.name);
    eval_fail("unbound variable '" + n.name + "'");
  }

  Value eval_node(const lang::Let& n, const ExprPtr&, Env& env) {
    Value init = expr(n.init, env);
    env.push(n.var, std::move(init));
    Value result = expr(n.body, env);
    env.pop();
    return result;
  }

  Value eval_node(const lang::If& n, const ExprPtr&, Env& env) {
    return expr(n.cond, env).as_bool() ? expr(n.then_expr, env)
                                       : expr(n.else_expr, env);
  }

  Value eval_node(const lang::Iterator& n, const ExprPtr&, Env& env) {
    const ValueList domain = expr(n.domain, env).as_seq();
    ValueList out;
    out.reserve(domain.size());
    // Parallel semantics: every element evaluates independently, so the
    // iterator's contribution to the critical path is the MAX over its
    // bodies, not the sum.
    const std::uint64_t base_steps = stats_.steps;
    std::uint64_t deepest = base_steps;
    for (const Value& elem : domain) {
      stats_.steps = base_steps;
      env.push(n.var, elem);
      bool keep = true;
      if (n.filter != nullptr) keep = expr(n.filter, env).as_bool();
      if (keep) {
        stats_.iterations += 1;
        out.push_back(expr(n.body, env));
      }
      env.pop();
      deepest = std::max(deepest, stats_.steps);
    }
    stats_.steps = deepest + 1;  // +1: assembling the result
    return Value::seq(std::move(out));
  }

  Value eval_node(const lang::Call&, const ExprPtr&, Env&) {
    eval_fail("interpreter given an unresolved Call node; type-check first");
  }

  Value eval_node(const lang::LambdaExpr&, const ExprPtr&, Env&) {
    eval_fail("interpreter given an unlifted lambda; type-check first");
  }

  Value eval_node(const lang::TupleExpr& n, const ExprPtr&, Env& env) {
    ValueList elems = eval_args(n.elems, env);
    return map_depth(n.depth, {}, elems, [](const ValueList& sub) {
      return Value::tuple(sub);
    });
  }

  Value eval_node(const lang::TupleGet& n, const ExprPtr&, Env& env) {
    ValueList args{expr(n.tuple, env)};
    const std::size_t index = static_cast<std::size_t>(n.index - 1);
    return map_depth(n.depth, {}, args, [&](const ValueList& sub) {
      return sub[0].as_tuple()[index];
    });
  }

  Value eval_node(const lang::SeqExpr& n, const ExprPtr&, Env& env) {
    ValueList elems = eval_args(n.elems, env);
    return map_depth(n.depth, {}, elems, [](const ValueList& sub) {
      return Value::seq(sub);
    });
  }

  Value eval_node(const lang::PrimCall& n, const ExprPtr& e, Env& env) {
    ValueList args = eval_args(n.args, env);
    if (n.op == Prim::kEmptyFrame) {
      // For empty_frame the depth field records the frame depth j of rule
      // R2d (not a parallel-extension depth): the result preserves the
      // mask's structure above the deepest level and empties that level.
      stats_.scalar_ops += 1;
      return empty_frame(args[0], n.depth);
    }
    return apply_prim_at_depth(n.op, n.depth, n.lifted, args, e->type);
  }

  Value eval_node(const lang::FunCall& n, const ExprPtr&, Env& env) {
    ValueList args = eval_args(n.args, env);
    return apply_fun_at_depth(n.name, n.depth, n.lifted, args);
  }

  Value eval_node(const lang::IndirectCall& n, const ExprPtr&, Env& env) {
    Value fn = expr(n.fn, env);
    ValueList args = eval_args(n.args, env);
    return apply_fun_at_depth(fn.fun_name(), n.depth, n.lifted, args);
  }

  ValueList eval_args(const std::vector<ExprPtr>& args, Env& env) {
    ValueList out;
    out.reserve(args.size());
    for (const ExprPtr& a : args) out.push_back(expr(a, env));
    return out;
  }

  // --- depth-extended application ----------------------------------------------

  static bool is_lifted(const std::vector<std::uint8_t>& lifted,
                        std::size_t i) {
    return lifted.empty() || lifted[i] != 0;
  }

  /// Applies `base` elementwise through `depth` levels of frame nesting;
  /// non-lifted arguments are broadcast unchanged.
  Value map_depth(int depth, const std::vector<std::uint8_t>& lifted,
                  const ValueList& args,
                  const std::function<Value(const ValueList&)>& base) {
    if (depth == 0) return base(args);
    Size n = -1;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (is_lifted(lifted, i)) {
        Size len = static_cast<Size>(args[i].as_seq().size());
        if (n < 0) n = len;
        if (len != n) {
          eval_fail("parallel extension applied to non-conformable frames (" +
                    std::to_string(n) + " vs " + std::to_string(len) + ")");
        }
      }
    }
    if (n < 0) eval_fail("parallel extension with no frame argument");
    ValueList out;
    out.reserve(static_cast<std::size_t>(n));
    for (Size k = 0; k < n; ++k) {
      ValueList sub;
      sub.reserve(args.size());
      for (std::size_t i = 0; i < args.size(); ++i) {
        sub.push_back(is_lifted(lifted, i)
                          ? args[i].as_seq()[static_cast<std::size_t>(k)]
                          : args[i]);
      }
      out.push_back(map_depth(depth - 1, lifted, sub, base));
    }
    return Value::seq(std::move(out));
  }

  Value apply_prim_at_depth(Prim op, int depth,
                            const std::vector<std::uint8_t>& lifted,
                            const ValueList& args, const TypePtr& type) {
    if (depth == 0) return apply_prim(op, args, type);
    // The element type annotation for kEmptyFrame at depth d is the
    // annotation with d Seq wrappers removed.
    TypePtr elem_type = type;
    return map_depth(depth, lifted, args, [&](const ValueList& sub) {
      return apply_prim(op, sub, elem_type);
    });
  }

  Value apply_fun_at_depth(const std::string& name, int depth,
                           const std::vector<std::uint8_t>& lifted,
                           const ValueList& args) {
    if (depth == 0) return call(name, args);
    return map_depth(depth, lifted, args,
                     [&](const ValueList& sub) { return call(name, sub); });
  }

  // --- primitive semantics -------------------------------------------------------

  Value apply_prim(Prim op, const ValueList& a, const TypePtr& type) {
    stats_.scalar_ops += 1;
    stats_.steps += 1;
    switch (op) {
      case Prim::kAdd:
        return numeric2(a, [](Int x, Int y) { return x + y; },
                        [](Real x, Real y) { return x + y; });
      case Prim::kSub:
        return numeric2(a, [](Int x, Int y) { return x - y; },
                        [](Real x, Real y) { return x - y; });
      case Prim::kMul:
        return numeric2(a, [](Int x, Int y) { return x * y; },
                        [](Real x, Real y) { return x * y; });
      case Prim::kDiv:
        if (a[0].is_int()) {
          if (a[1].as_int() == 0) eval_fail("division by zero");
          return Value::ints(a[0].as_int() / a[1].as_int());
        }
        return Value::reals(a[0].as_real() / a[1].as_real());
      case Prim::kMod:
        if (a[1].as_int() == 0) eval_fail("mod by zero");
        return Value::ints(a[0].as_int() % a[1].as_int());
      case Prim::kNeg:
        return a[0].is_int() ? Value::ints(-a[0].as_int())
                             : Value::reals(-a[0].as_real());
      case Prim::kMin:
        return numeric2(a, [](Int x, Int y) { return x < y ? x : y; },
                        [](Real x, Real y) { return x < y ? x : y; });
      case Prim::kMax:
        return numeric2(a, [](Int x, Int y) { return x < y ? y : x; },
                        [](Real x, Real y) { return x < y ? y : x; });
      case Prim::kEq:
        return Value::bools(a[0] == a[1]);
      case Prim::kNe:
        return Value::bools(!(a[0] == a[1]));
      case Prim::kLt:
        return compare(a, [](auto x, auto y) { return x < y; });
      case Prim::kLe:
        return compare(a, [](auto x, auto y) { return x <= y; });
      case Prim::kGt:
        return compare(a, [](auto x, auto y) { return x > y; });
      case Prim::kGe:
        return compare(a, [](auto x, auto y) { return x >= y; });
      case Prim::kAnd:
        return Value::bools(a[0].as_bool() && a[1].as_bool());
      case Prim::kOr:
        return Value::bools(a[0].as_bool() || a[1].as_bool());
      case Prim::kNot:
        return Value::bools(!a[0].as_bool());
      case Prim::kSqrt:
        return Value::reals(std::sqrt(a[0].as_real()));
      case Prim::kToReal:
        return Value::reals(static_cast<Real>(a[0].as_int()));
      case Prim::kToInt:
        return Value::ints(static_cast<Int>(a[0].as_real()));
      case Prim::kLength:
        return Value::ints(static_cast<Int>(a[0].as_seq().size()));
      case Prim::kRange: {
        Int lo = a[0].as_int();
        Int hi = a[1].as_int();
        ValueList out;
        for (Int v = lo; v <= hi; ++v) out.push_back(Value::ints(v));
        stats_.scalar_ops += out.size();
        return Value::seq(std::move(out));
      }
      case Prim::kRange1: {
        Int n = a[0].as_int();
        ValueList out;
        for (Int v = 1; v <= n; ++v) out.push_back(Value::ints(v));
        stats_.scalar_ops += out.size();
        return Value::seq(std::move(out));
      }
      case Prim::kRestrict: {
        const ValueList& v = a[0].as_seq();
        const ValueList& m = a[1].as_seq();
        if (v.size() != m.size()) {
          eval_fail("restrict: sequence and mask lengths differ");
        }
        ValueList out;
        for (std::size_t i = 0; i < v.size(); ++i) {
          if (m[i].as_bool()) out.push_back(v[i]);
        }
        stats_.scalar_ops += v.size();
        return Value::seq(std::move(out));
      }
      case Prim::kCombine: {
        const ValueList& m = a[0].as_seq();
        const ValueList& t = a[1].as_seq();
        const ValueList& f = a[2].as_seq();
        if (m.size() != t.size() + f.size()) {
          eval_fail("combine: #M must equal #V + #U");
        }
        ValueList out;
        std::size_t ti = 0;
        std::size_t fi = 0;
        for (const Value& flag : m) {
          out.push_back(flag.as_bool() ? t[ti++] : f[fi++]);
        }
        stats_.scalar_ops += m.size();
        return Value::seq(std::move(out));
      }
      case Prim::kDist: {
        Int r = a[1].as_int();
        if (r < 0) r = 0;
        ValueList out(static_cast<std::size_t>(r), a[0]);
        stats_.scalar_ops += out.size();
        return Value::seq(std::move(out));
      }
      case Prim::kSeqIndex: {
        const ValueList& s = a[0].as_seq();
        Int i = checked_index(a[1].as_int(), static_cast<Size>(s.size()));
        return s[static_cast<std::size_t>(i)];
      }
      case Prim::kSeqIndexInner: {
        // [v[i] : i in is] — the shared-row gather of Section 4.5.
        const ValueList& s = a[0].as_seq();
        const ValueList& is = a[1].as_seq();
        ValueList out;
        out.reserve(is.size());
        for (const Value& iv : is) {
          Int i = checked_index(iv.as_int(), static_cast<Size>(s.size()));
          out.push_back(s[static_cast<std::size_t>(i)]);
        }
        stats_.scalar_ops += is.size();
        return Value::seq(std::move(out));
      }
      case Prim::kSeqUpdate: {
        ValueList s = a[0].as_seq();
        Int i = checked_index(a[1].as_int(), static_cast<Size>(s.size()));
        s[static_cast<std::size_t>(i)] = a[2];
        stats_.scalar_ops += s.size();
        return Value::seq(std::move(s));
      }
      case Prim::kFlatten: {
        const ValueList& v = a[0].as_seq();
        ValueList out;
        for (const Value& inner : v) {
          const ValueList& xs = inner.as_seq();
          out.insert(out.end(), xs.begin(), xs.end());
        }
        stats_.scalar_ops += out.size();
        return Value::seq(std::move(out));
      }
      case Prim::kConcat: {
        ValueList out = a[0].as_seq();
        const ValueList& w = a[1].as_seq();
        out.insert(out.end(), w.begin(), w.end());
        stats_.scalar_ops += out.size();
        return Value::seq(std::move(out));
      }
      case Prim::kSum: {
        const ValueList& v = a[0].as_seq();
        stats_.scalar_ops += v.size();
        if (!v.empty() && v.front().is_real()) {
          Real acc = 0;
          for (const Value& x : v) acc += x.as_real();
          return Value::reals(acc);
        }
        Int acc = 0;
        for (const Value& x : v) acc += x.as_int();
        return Value::ints(acc);
      }
      case Prim::kMaxVal:
      case Prim::kMinVal: {
        const ValueList& v = a[0].as_seq();
        if (v.empty()) eval_fail("maxval/minval of an empty sequence");
        stats_.scalar_ops += v.size();
        const bool want_max = op == Prim::kMaxVal;
        if (v.front().is_real()) {
          Real best = v.front().as_real();
          for (const Value& x : v) {
            Real r = x.as_real();
            best = want_max ? (r > best ? r : best) : (r < best ? r : best);
          }
          return Value::reals(best);
        }
        Int best = v.front().as_int();
        for (const Value& x : v) {
          Int r = x.as_int();
          best = want_max ? (r > best ? r : best) : (r < best ? r : best);
        }
        return Value::ints(best);
      }
      case Prim::kReverse: {
        const ValueList& v = a[0].as_seq();
        ValueList out(v.rbegin(), v.rend());
        stats_.scalar_ops += v.size();
        return Value::seq(std::move(out));
      }
      case Prim::kZip: {
        const ValueList& x = a[0].as_seq();
        const ValueList& y = a[1].as_seq();
        if (x.size() != y.size()) {
          eval_fail("zip: sequences have different lengths");
        }
        ValueList out;
        out.reserve(x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
          out.push_back(Value::tuple({x[i], y[i]}));
        }
        stats_.scalar_ops += x.size();
        return Value::seq(std::move(out));
      }
      case Prim::kAnyV: {
        const ValueList& v = a[0].as_seq();
        stats_.scalar_ops += v.size();
        for (const Value& x : v) {
          if (x.as_bool()) return Value::bools(true);
        }
        return Value::bools(false);
      }
      case Prim::kAllV: {
        const ValueList& v = a[0].as_seq();
        stats_.scalar_ops += v.size();
        for (const Value& x : v) {
          if (!x.as_bool()) return Value::bools(false);
        }
        return Value::bools(true);
      }
      case Prim::kExtract: {
        Int d = a[1].as_int();
        Value cur = a[0];
        for (Int k = 0; k < d; ++k) cur = flatten_once(cur);
        return cur;
      }
      case Prim::kInsert: {
        Int d = a[2].as_int();
        if (d == 0) return a[0];
        std::size_t cursor = 0;
        const ValueList& flat = a[0].as_seq();
        Value shaped = reshape(flat, a[1], static_cast<int>(d), cursor);
        if (cursor != flat.size()) {
          eval_fail("insert: result length does not match frame");
        }
        return shaped;
      }
      case Prim::kEmptyFrame: {
        PROTEUS_REQUIRE(EvalError, type != nullptr,
                        "empty_frame without a type annotation");
        return empty_frame(a[0], lang::seq_depth(type));
      }
      case Prim::kAnyTrue:
        return Value::bools(any_leaf(a[0]));
    }
    eval_fail("corrupt primitive opcode");
  }

  template <typename FInt, typename FReal>
  Value numeric2(const ValueList& a, FInt fi, FReal fr) {
    if (a[0].is_int()) return Value::ints(fi(a[0].as_int(), a[1].as_int()));
    return Value::reals(fr(a[0].as_real(), a[1].as_real()));
  }

  template <typename F>
  Value compare(const ValueList& a, F f) {
    if (a[0].is_int()) return Value::bools(f(a[0].as_int(), a[1].as_int()));
    return Value::bools(f(a[0].as_real(), a[1].as_real()));
  }

  Value flatten_once(const Value& v) {
    ValueList out;
    for (const Value& inner : v.as_seq()) {
      const ValueList& xs = inner.as_seq();
      out.insert(out.end(), xs.begin(), xs.end());
    }
    return Value::seq(std::move(out));
  }

  /// Rebuilds the top `d` levels of `skeleton` around the elements of
  /// `flat` (the boxed semantics of insert, d >= 1): the result copies the
  /// skeleton's descriptors down to depth d and partitions `flat` by the
  /// skeleton's depth-d segment lengths.
  Value reshape(const ValueList& flat, const Value& skeleton, int d,
                std::size_t& cursor) {
    ValueList out;
    if (d == 1) {
      for (const Value& child : skeleton.as_seq()) {
        ValueList segment;
        for (std::size_t k = 0; k < child.as_seq().size(); ++k) {
          if (cursor >= flat.size()) {
            eval_fail("insert: result has fewer elements than the frame");
          }
          segment.push_back(flat[cursor++]);
        }
        out.push_back(Value::seq(std::move(segment)));
      }
      return Value::seq(std::move(out));
    }
    for (const Value& child : skeleton.as_seq()) {
      out.push_back(reshape(flat, child, d - 1, cursor));
    }
    return Value::seq(std::move(out));
  }

  /// Same structure as `frame` down to depth-1, empty sequences at the
  /// deepest level (rule R2d's empty_frame).
  Value empty_frame(const Value& frame, int depth) {
    if (depth <= 1) return Value::seq({});
    ValueList out;
    for (const Value& child : frame.as_seq()) {
      out.push_back(empty_frame(child, depth - 1));
    }
    return Value::seq(std::move(out));
  }

  bool any_leaf(const Value& v) {
    if (v.is_bool()) return v.as_bool();
    for (const Value& child : v.as_seq()) {
      if (any_leaf(child)) return true;
    }
    return false;
  }

  const lang::Program& program_;
  InterpStats& stats_;
  int& call_depth_;
  int& eval_depth_;
};

}  // namespace

Value Interpreter::call_function(const std::string& name,
                                 const ValueList& args) {
  Eval e(program_, stats_, call_depth_, eval_depth_);
  return e.call(name, args);
}

Value Interpreter::eval(const lang::ExprPtr& expr) {
  Eval e(program_, stats_, call_depth_, eval_depth_);
  Env env;
  return e.expr(expr, env);
}

}  // namespace proteus::interp
