#include "exec/exec.hpp"

#include <utility>

#include "obs/tracer.hpp"
#include "rt/governor.hpp"
#include "vl/backend.hpp"
#include "vl/check.hpp"

namespace proteus::exec {

using lang::Expr;
using lang::ExprPtr;
using lang::FunDef;
using lang::Prim;

namespace {

class Env {
 public:
  void push(const std::string& name, VValue v) {
    bindings_.emplace_back(name, std::move(v));
  }
  void pop() { bindings_.pop_back(); }
  [[nodiscard]] const VValue* lookup(const std::string& name) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, VValue>> bindings_;
};

}  // namespace

class VEval {
 public:
  explicit VEval(Executor& host) : host_(host) {}

  VValue expr(const ExprPtr& e, Env& env) {
    // Cooperative governor check per node (cancellation/deadline), plus a
    // structural-nesting bound so adversarially deep ASTs trap instead of
    // overrunning the C++ stack.
    rt::poll("exec");
    rt::NestingGuard nesting(&host_.eval_depth_, "exec");
    return std::visit(
        [&](const auto& node) { return eval_node(node, e, env); }, e->node);
  }

  VValue call(const std::string& name, const std::vector<VValue>& args) {
    auto it = host_.functions_.find(name);
    if (it == host_.functions_.end()) {
      throw EvalError("vector executor: unknown function '" + name +
                      "' (was its parallel extension generated?)");
    }
    const FunDef* f = it->second;
    PROTEUS_REQUIRE(EvalError, f->params.size() == args.size(),
                    "'" + name + "' called with wrong argument count");
    if (++host_.call_depth_ > rt::depth_limit()) {
      --host_.call_depth_;
      rt::raise(rt::Trap::kDepth,
                "call depth limit exceeded in '" + name + "'", "exec");
    }
    host_.stats_.calls += 1;
    Env env;
    for (std::size_t i = 0; i < args.size(); ++i) {
      env.push(f->params[i].name, args[i]);
    }
    // Nesting is per function body: the C++ stack a call burns is bounded
    // by call_depth * per-body nesting, and the call depth has its own
    // (tested) ceiling.
    const int outer_nesting = std::exchange(host_.eval_depth_, 0);
    VValue result = expr(f->body, env);
    host_.eval_depth_ = outer_nesting;
    --host_.call_depth_;
    return result;
  }

 private:
  VValue eval_node(const lang::IntLit& n, const ExprPtr&, Env&) {
    return VValue::ints(n.value);
  }
  VValue eval_node(const lang::RealLit& n, const ExprPtr&, Env&) {
    return VValue::reals(n.value);
  }
  VValue eval_node(const lang::BoolLit& n, const ExprPtr&, Env&) {
    return VValue::bools(n.value);
  }

  VValue eval_node(const lang::VarRef& n, const ExprPtr&, Env& env) {
    if (!n.is_function) {
      const VValue* v = env.lookup(n.name);
      if (v != nullptr) return *v;
    }
    if (host_.functions_.contains(n.name)) return VValue::fun(n.name);
    throw EvalError("vector executor: unbound variable '" + n.name + "'");
  }

  VValue eval_node(const lang::Let& n, const ExprPtr&, Env& env) {
    env.push(n.var, expr(n.init, env));
    VValue result = expr(n.body, env);
    env.pop();
    return result;
  }

  VValue eval_node(const lang::If& n, const ExprPtr&, Env& env) {
    return expr(n.cond, env).as_bool() ? expr(n.then_expr, env)
                                       : expr(n.else_expr, env);
  }

  VValue eval_node(const lang::PrimCall& n, const ExprPtr& e, Env& env) {
    std::vector<VValue> args = eval_args(n.args, env);
    host_.stats_.prim_applications += 1;
    host_.stats_.per_prim[n.op] += 1;
    // One runtime span per vl primitive family; the element-work delta
    // of the shared kernel table is attributed to it. Inactive cost is
    // one branch (see obs/tracer.hpp).
    obs::Span span("prim", lang::prim_name(n.op));
    const std::uint64_t work0 =
        span.active() ? vl::stats().element_work : 0;
    VValue result;
    if (n.op == Prim::kEmptyFrame) {
      result = empty_frame_value(args[0], n.depth, e->type);
    } else if (n.depth == 0) {
      result = apply_prim0(n.op, args);
    } else {
      PROTEUS_REQUIRE(EvalError, n.depth == 1,
                      "vector executor given a depth >= 2 primitive call; "
                      "run the T1 translation first");
      result = apply_prim1(n.op, args, n.lifted, host_.options_);
    }
    if (span.active()) {
      span.counter("elements", vl::stats().element_work - work0);
      span.counter("depth", static_cast<std::uint64_t>(n.depth));
    }
    return result;
  }

  VValue eval_node(const lang::FunCall& n, const ExprPtr&, Env& env) {
    PROTEUS_REQUIRE(EvalError, n.depth == 0,
                    "vector executor given a depth-extended user call; run "
                    "the T1 translation first");
    return call(n.name, eval_args(n.args, env));
  }

  VValue eval_node(const lang::IndirectCall& n, const ExprPtr&, Env& env) {
    VValue fn = expr(n.fn, env);
    std::vector<VValue> args = eval_args(n.args, env);
    PROTEUS_REQUIRE(EvalError, n.depth <= 1,
                    "vector executor given a depth >= 2 indirect call");
    const std::string target = n.depth == 0
                                   ? fn.fun_name()
                                   : lang::extension_name(fn.fun_name(), 1);
    return call(target, args);
  }

  VValue eval_node(const lang::TupleExpr& n, const ExprPtr&, Env& env) {
    return tuple_cons(eval_args(n.elems, env), n.depth);
  }

  VValue eval_node(const lang::TupleGet& n, const ExprPtr&, Env& env) {
    return tuple_get(expr(n.tuple, env), n.index, n.depth);
  }

  VValue eval_node(const lang::SeqExpr& n, const ExprPtr& e, Env& env) {
    std::vector<VValue> elems = eval_args(n.elems, env);
    if (n.depth > 0) return seq_cons1(elems);
    lang::TypePtr elem_type = n.elem_type;
    if (elem_type == nullptr && elems.empty()) elem_type = e->type->elem();
    return seq_cons0(elems, elem_type);
  }

  VValue eval_node(const lang::Iterator&, const ExprPtr&, Env&) {
    throw EvalError(
        "vector executor given an iterator; run the transformation first");
  }
  VValue eval_node(const lang::Call&, const ExprPtr&, Env&) {
    throw EvalError("vector executor given an unresolved Call node");
  }
  VValue eval_node(const lang::LambdaExpr&, const ExprPtr&, Env&) {
    throw EvalError("vector executor given an unlifted lambda");
  }

  std::vector<VValue> eval_args(const std::vector<ExprPtr>& args, Env& env) {
    std::vector<VValue> out;
    out.reserve(args.size());
    for (const ExprPtr& a : args) out.push_back(expr(a, env));
    return out;
  }

  Executor& host_;
};

Executor::Executor(const lang::Program& program, PrimOptions options)
    : program_(program), options_(options) {
  for (const FunDef& f : program.functions) {
    functions_[f.name] = &f;
  }
}

VValue Executor::call_function(const std::string& name,
                               const std::vector<VValue>& args) {
  return VEval(*this).call(name, args);
}

VValue Executor::eval(const lang::ExprPtr& expr) {
  Env env;
  return VEval(*this).expr(expr, env);
}

}  // namespace proteus::exec
