// exec.hpp — the vector-model executor: evaluates transformed (V-form)
// programs over the flat representation of nested sequences.
//
// Input programs must be iterator-free with call depths <= 1 (the output
// of the full pipeline of xform/pipeline.hpp). Each depth-1 call runs as a
// handful of vl vector primitives over whole frames — this engine is the
// stand-in for the paper's "C with CVL" target, and vl::stats() measures
// the vector-model work it issues.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/prims.hpp"
#include "exec/vvalue.hpp"
#include "lang/ast.hpp"

namespace proteus::exec {

struct ExecStats {
  std::uint64_t prim_applications = 0;  ///< primitive nodes evaluated
  std::uint64_t calls = 0;              ///< user-function invocations
  /// Per-opcode application counts (the mix of vector instructions the
  /// transformed program issues — CVL-style instruction profile).
  std::map<lang::Prim, std::uint64_t> per_prim;
};

// Call depth and per-expression nesting are bounded by the execution
// governor (rt::depth_limit() / rt::nesting_limit()); a runaway raises
// rt::RuntimeTrap (T003) instead of overrunning the C++ stack.

class Executor {
 public:
  /// `program` must be a transformed V program (e.g. Compiled::vec).
  explicit Executor(const lang::Program& program,
                    PrimOptions options = {});

  /// Calls function `name` (use lang::extension_name for extensions).
  [[nodiscard]] VValue call_function(const std::string& name,
                                     const std::vector<VValue>& args);

  /// Evaluates a closed V expression.
  [[nodiscard]] VValue eval(const lang::ExprPtr& expr);

  [[nodiscard]] ExecStats& stats() { return stats_; }
  void reset_stats() { stats_ = ExecStats{}; }

  [[nodiscard]] const lang::Program& program() const { return program_; }

 private:
  friend class VEval;
  const lang::Program& program_;
  std::unordered_map<std::string, const lang::FunDef*> functions_;
  PrimOptions options_;
  ExecStats stats_;
  int call_depth_ = 0;
  int eval_depth_ = 0;  ///< structural recursion within one function body
};

}  // namespace proteus::exec
