// vvalue.hpp — compatibility shim: the vector-model runtime value now
// lives in the shared kernel layer (kernels/vvalue.hpp) so that both the
// tree-walking executor and the bytecode VM operate on one value type.
// Existing exec:: spellings keep working through these aliases.
#pragma once

#include "kernels/vvalue.hpp"

namespace proteus::exec {

using kernels::Array;
using kernels::Int;
using kernels::Real;
using kernels::Size;
using kernels::VValue;

using kernels::element_value;
using kernels::empty_array_of;
using kernels::from_boxed;
using kernels::materialize;
using kernels::to_boxed;

}  // namespace proteus::exec
