// prims.hpp — compatibility shim: the Table 2 primitive kernels now live
// in the shared kernel table (kernels/prims.hpp) called by both execution
// engines. Existing exec:: spellings keep working through these aliases.
#pragma once

#include "exec/vvalue.hpp"
#include "kernels/prims.hpp"

namespace proteus::exec {

using kernels::PrimOptions;

using kernels::any_true_frame;
using kernels::apply_prim0;
using kernels::apply_prim1;
using kernels::empty_frame_value;
using kernels::seq_cons0;
using kernels::seq_cons1;
using kernels::tuple_cons;
using kernels::tuple_get;

}  // namespace proteus::exec
