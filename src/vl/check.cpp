#include "vl/check.hpp"

#include <sstream>

namespace proteus::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal " << kind << " failure at " << file << ":" << line << ": "
     << msg << " [" << expr << "]";
  throw Error(os.str());
}

}  // namespace proteus::detail
