// arena.cpp — thread-local pool stack behind vl/arena.hpp.
#include "vl/arena.hpp"

#include <array>
#include <bit>
#include <memory>
#include <utility>

#include "rt/governor.hpp"

namespace proteus::vl::arena {

namespace {

/// Buffers below this capacity free normally: pooling them costs more in
/// bookkeeping than the allocator charges for them.
constexpr std::uint64_t kMinDonationBytes = 256;
/// Size-class buckets: floor(log2(capacity)), capped.
constexpr std::size_t kClasses = 48;

std::size_t class_of(std::size_t n) {
  const auto c = static_cast<std::size_t>(
      std::bit_width(n == 0 ? std::size_t{1} : n) - 1);
  return c < kClasses ? c : kClasses - 1;
}

template <typename T>
struct TypedPool {
  struct Entry {
    std::vector<T> buf;
    std::uint64_t charged = 0;
  };
  std::array<std::vector<Entry>, kClasses> buckets;
};

struct Pool {
  std::uint64_t cap_bytes = 0;
  std::uint64_t held_bytes = 0;
  std::uint64_t buffers = 0;
  TypedPool<std::int64_t> ints;
  TypedPool<double> reals;
  TypedPool<std::uint8_t> bools;
  Pool* previous = nullptr;
};

thread_local Pool* t_pool = nullptr;

template <typename T>
TypedPool<T>& typed(Pool& p);
template <>
TypedPool<std::int64_t>& typed(Pool& p) {
  return p.ints;
}
template <>
TypedPool<double>& typed(Pool& p) {
  return p.reals;
}
template <>
TypedPool<std::uint8_t>& typed(Pool& p) {
  return p.bools;
}

template <typename T>
bool acquire_impl(std::size_t n, std::vector<T>& out,
                  std::uint64_t& charged) noexcept {
  Pool* p = t_pool;
  if (p == nullptr || n == 0) return false;
  TypedPool<T>& tp = typed<T>(*p);
  // A buffer of capacity >= n lives in class(n) (upper half) or any class
  // above; scanning two classes keeps worst-case waste under 4x.
  const std::size_t first = class_of(n);
  for (std::size_t c = first; c < first + 2 && c < kClasses; ++c) {
    auto& bucket = tp.buckets[c];
    for (std::size_t i = bucket.size(); i-- > 0;) {
      if (bucket[i].buf.capacity() < n) continue;
      out = std::move(bucket[i].buf);
      charged = bucket[i].charged;
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
      p->held_bytes -= charged;
      p->buffers -= 1;
      return true;
    }
  }
  return false;
}

template <typename T>
bool donate_impl(std::vector<T>&& v, std::uint64_t charged) noexcept {
  Pool* p = t_pool;
  if (p == nullptr) return false;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
  if (bytes < kMinDonationBytes || charged == 0) return false;
  if (p->held_bytes + charged > p->cap_bytes) return false;
  TypedPool<T>& tp = typed<T>(*p);
  auto& bucket = tp.buckets[class_of(v.capacity())];
  try {
    bucket.push_back({std::move(v), charged});
  } catch (...) {
    return false;  // the caller still owns v and its charge
  }
  p->held_bytes += charged;
  p->buffers += 1;
  return true;
}

}  // namespace

Scope::Scope(std::uint64_t cap_bytes) {
  auto* p = new Pool;
  p->cap_bytes = cap_bytes;
  p->previous = t_pool;
  t_pool = p;
}

Scope::~Scope() {
  Pool* p = t_pool;
  if (p == nullptr) return;
  t_pool = p->previous;
  // Pooled buffers carry their governor charge; freeing them here must
  // return it or resident-byte accounting leaks upward.
  rt::release_bytes(p->held_bytes);
  delete p;
}

bool active() noexcept { return t_pool != nullptr; }

Totals totals() noexcept {
  if (t_pool == nullptr) return {};
  return {t_pool->held_bytes, t_pool->buffers};
}

bool try_acquire(std::size_t n, std::vector<std::int64_t>& out,
                 std::uint64_t& charged) noexcept {
  return acquire_impl(n, out, charged);
}
bool try_acquire(std::size_t n, std::vector<double>& out,
                 std::uint64_t& charged) noexcept {
  return acquire_impl(n, out, charged);
}
bool try_acquire(std::size_t n, std::vector<std::uint8_t>& out,
                 std::uint64_t& charged) noexcept {
  return acquire_impl(n, out, charged);
}

bool try_donate(std::vector<std::int64_t>&& v, std::uint64_t charged) noexcept {
  return donate_impl(std::move(v), charged);
}
bool try_donate(std::vector<double>&& v, std::uint64_t charged) noexcept {
  return donate_impl(std::move(v), charged);
}
bool try_donate(std::vector<std::uint8_t>&& v, std::uint64_t charged) noexcept {
  return donate_impl(std::move(v), charged);
}

}  // namespace proteus::vl::arena
