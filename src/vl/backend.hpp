// backend.hpp — execution policy for the flat vector library.
//
// The vector model is machine independent; this library ships two
// realizations of each kernel family:
//
//   * Serial  — a plain loop; the reference implementation and the natural
//               choice for the "sequential execution" measurements of the
//               paper's Section 6.
//   * OpenMP  — a work-partitioned loop (blocked two-pass algorithms for
//               scans); stands in for the SIMD/vector machines CVL targeted.
//
// The active backend is a process-global setting (kernels are pure, so the
// choice only affects performance, never results). Per-call work counters
// feed the machine-independent work/step measurements that Proteus
// prototyping is about.
#pragma once

#include <cstdint>

#include "vl/vec.hpp"

namespace proteus::vl {

enum class Backend : std::uint8_t {
  kSerial,
  kOpenMP,
};

/// Returns the process-global backend. Defaults to Serial; a process
/// started with PROTEUS_BACKEND=openmp in the environment begins on the
/// OpenMP backend instead (when the build has it), which lets a whole
/// test run exercise the parallel kernels without code changes.
[[nodiscard]] Backend backend() noexcept;

/// Sets the process-global backend. Returns the previous value.
Backend set_backend(Backend b) noexcept;

/// True when this build can actually run the OpenMP backend.
[[nodiscard]] bool openmp_available() noexcept;

/// Number of threads the OpenMP backend would use (1 for Serial builds).
[[nodiscard]] int backend_threads() noexcept;

/// RAII guard that switches the backend for a scope.
class BackendGuard {
 public:
  explicit BackendGuard(Backend b) : previous_(set_backend(b)) {}
  ~BackendGuard() { set_backend(previous_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Backend previous_;
};

/// Vector-model cost counters (Blelloch's work/step accounting): every
/// primitive adds its element count to `work` and one to `steps`.
struct VectorStats {
  std::uint64_t primitive_calls = 0;  ///< number of vector primitives issued
  std::uint64_t element_work = 0;     ///< total elements touched (work)
  std::uint64_t segment_work = 0;     ///< segments touched by segdesc ops
  std::uint64_t buffer_allocs = 0;    ///< output buffers kernels heap-allocated
  // Plan-backed arena split (vl/arena.hpp; zero when no scope is active):
  std::uint64_t arena_recycled = 0;       ///< outputs served from the pool
  std::uint64_t arena_heap_fallbacks = 0; ///< heap allocs under an active arena
  std::uint64_t arena_slots = 0;          ///< plan slots of the last root call
  std::uint64_t arena_bytes_planned = 0;  ///< plan peak bound at input scale

  /// Also the governor's kernel charge point: the element count feeds the
  /// rt:: step budget and the injected-kernel fault plan, so this can
  /// throw rt::RuntimeTrap when a budget trips or a fault fires (never
  /// with the governor inactive).
  void record(Size elements) {
    primitive_calls += 1;
    element_work += static_cast<std::uint64_t>(elements);
    rt::charge_work(static_cast<std::uint64_t>(elements));
  }

  /// Physical (not model-level) cost: one fresh output buffer. Unlike
  /// primitive_calls/element_work — which every engine must agree on —
  /// this is optimization-sensitive: fusion and in-place reuse lower it.
  void record_alloc() noexcept { buffer_allocs += 1; }

  /// Arena-aware variant: a recycled output counts toward the pool's
  /// tally instead of buffer_allocs; a heap allocation that happened
  /// while an arena was active is additionally a fallback (plan bound
  /// exceeded, foreign type, or pool empty).
  void record_alloc(bool recycled) noexcept {
    if (recycled) {
      arena_recycled += 1;
      return;
    }
    buffer_allocs += 1;
    if (arena::active()) arena_heap_fallbacks += 1;
  }

  /// Segmented primitives additionally report how many segments their
  /// descriptor covered — the irregularity measure of a run.
  void record_segments(Size segments) noexcept {
    segment_work += static_cast<std::uint64_t>(segments);
  }
};

/// Per-thread stats, reset/read around a region of interest on the
/// thread driving the evaluation (kernels record outside their parallel
/// regions, so the driving thread sees all of its own work and none of
/// any other thread's — the isolation concurrent serving relies on).
[[nodiscard]] VectorStats& stats() noexcept;
void reset_stats() noexcept;

/// Minimum vector length before the OpenMP backend forks threads;
/// shorter vectors run the serial loop regardless of backend.
inline constexpr Size kParallelGrain = 4096;

}  // namespace proteus::vl
