#include "vl/elementwise.hpp"

namespace proteus::vl::detail {

void throw_div_by_zero() { throw EvalError("division by zero"); }

void throw_mod_by_zero() { throw EvalError("mod by zero"); }

}  // namespace proteus::vl::detail
