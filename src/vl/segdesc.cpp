#include "vl/segdesc.hpp"

#include "vl/kernel.hpp"
#include "vl/scan.hpp"

namespace proteus::vl {

IntVec lengths_to_offsets(const IntVec& lengths) {
  return scan_add(lengths);
}

Size lengths_total(const IntVec& lengths) {
  const Int* p = lengths.data();
  Size total = detail::parallel_reduce(
      lengths.size(), Size{0},
      [&](Size i) {
        PROTEUS_REQUIRE(VectorError, p[i] >= 0,
                        "descriptor contains a negative length");
        return Size(p[i]);
      },
      [](Size a, Size b) { return a + b; });
  stats().record(lengths.size());
  stats().record_segments(lengths.size());
  return total;
}

IntVec offsets_to_lengths(const IntVec& offsets, Size total) {
  const Size n = offsets.size();
  IntVec lengths(n);
  const Int* op = offsets.data();
  Int* lp = lengths.data();
  detail::parallel_for(n, [&](Size i) {
    const Int next = (i + 1 < n) ? op[i + 1] : total;
    PROTEUS_REQUIRE(VectorError, next >= op[i],
                    "offsets are not non-decreasing");
    lp[i] = next - op[i];
  });
  stats().record(n);
  return lengths;
}

BoolVec lengths_to_flags(const IntVec& lengths, Size total) {
  require_descriptor(lengths, total, "lengths_to_flags");
  BoolVec flags(total, Bool{0});
  IntVec offsets = lengths_to_offsets(lengths);
  const Int* op = offsets.data();
  const Int* lp = lengths.data();
  Bool* fp = flags.data();
  detail::parallel_for(lengths.size(), [&](Size s) {
    PROTEUS_REQUIRE(VectorError, lp[s] > 0,
                    "zero-length segment has no head-flag encoding");
    fp[op[s]] = 1;
  });
  stats().record(lengths.size());
  stats().record_segments(lengths.size());
  return flags;
}

IntVec flags_to_lengths(const BoolVec& flags) {
  const Size n = flags.size();
  if (n == 0) return IntVec{};
  PROTEUS_REQUIRE(VectorError, flags[0] != 0,
                  "first element must start a segment");
  IntVec lengths;
  Int run = 0;
  for (Size i = 0; i < n; ++i) {  // serial: output size is data dependent
    if (flags.data()[i] != 0 && run > 0) {
      lengths.push_back(run);
      run = 0;
    }
    ++run;
  }
  lengths.push_back(run);
  stats().record(n);
  return lengths;
}

IntVec segment_ids(const IntVec& lengths) {
  const Size total = lengths_total(lengths);
  IntVec ids(total);
  IntVec offsets = lengths_to_offsets(lengths);
  const Int* op = offsets.data();
  const Int* lp = lengths.data();
  Int* ip = ids.data();
  detail::parallel_for(lengths.size(), [&](Size s) {
    for (Int k = 0; k < lp[s]; ++k) ip[op[s] + k] = s;
  });
  stats().record(total);
  stats().record_segments(lengths.size());
  return ids;
}

IntVec segment_ranks(const IntVec& lengths) {
  const Size total = lengths_total(lengths);
  IntVec ranks(total);
  IntVec offsets = lengths_to_offsets(lengths);
  const Int* op = offsets.data();
  const Int* lp = lengths.data();
  Int* rp = ranks.data();
  detail::parallel_for(lengths.size(), [&](Size s) {
    for (Int k = 0; k < lp[s]; ++k) rp[op[s] + k] = k + 1;
  });
  stats().record(total);
  stats().record_segments(lengths.size());
  return ranks;
}

void require_descriptor(const IntVec& lengths, Size total, const char* op) {
  PROTEUS_REQUIRE(VectorError, lengths_total(lengths) == total,
                  std::string(op) + ": descriptor does not cover the vector");
}

}  // namespace proteus::vl
