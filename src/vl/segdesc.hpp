// segdesc.hpp — conversions between segment-descriptor encodings.
//
// A descriptor vector (Section 4.1 of the paper) stores the *lengths* of
// consecutive segments of the vector one level below. Kernels variously
// want that information as lengths, as exclusive start offsets, as
// head-flags, or as a per-element segment id; these conversions are each a
// single scan/permute-class primitive.
#pragma once

#include "vl/vec.hpp"

namespace proteus::vl {

/// Exclusive +-scan of lengths: start offset of each segment.
[[nodiscard]] IntVec lengths_to_offsets(const IntVec& lengths);

/// Total number of elements described (sum of lengths).
[[nodiscard]] Size lengths_total(const IntVec& lengths);

/// offsets (with `total` elements overall) -> lengths.
[[nodiscard]] IntVec offsets_to_lengths(const IntVec& offsets, Size total);

/// Head-flag vector: flag[i] == 1 iff position i starts a segment.
/// Zero-length segments are *not representable* as flags; throws
/// VectorError when one is present (this is why the representation of the
/// paper stores lengths, not flags).
[[nodiscard]] BoolVec lengths_to_flags(const IntVec& lengths, Size total);

/// flags -> lengths (the first element, if any, must start a segment).
[[nodiscard]] IntVec flags_to_lengths(const BoolVec& flags);

/// Per-element segment index: out[i] = s iff element i lies in segment s.
[[nodiscard]] IntVec segment_ids(const IntVec& lengths);

/// Per-element position within its segment, counting from 1 (the index
/// origin of P). This is exactly range1^1 on the descriptor.
[[nodiscard]] IntVec segment_ranks(const IntVec& lengths);

/// Validates that `lengths` is a well-formed descriptor over `total`
/// elements (all lengths non-negative, sum == total).
void require_descriptor(const IntVec& lengths, Size total, const char* op);

}  // namespace proteus::vl
