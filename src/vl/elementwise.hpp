// elementwise.hpp — elementwise (per-position) vector primitives.
//
// These are the depth-1 parallel extensions of the scalar functions of
// Table 2 of the paper: +, -, *, /, mod, comparisons, boolean connectives,
// min/max, negation, and the three-way select used by flattened
// conditionals. Each comes in vector(x)vector and vector(x)scalar forms —
// the scalar forms implement the Section 4.5 optimization of not
// replicating depth-0 argument frames.
#pragma once

#include <cmath>
#include <type_traits>

#include "vl/kernel.hpp"
#include "vl/vec.hpp"

namespace proteus::vl {

namespace detail {

template <typename R, typename T, typename F>
Vec<R> map(const Vec<T>& a, F&& f) {
  Vec<R> out(a.size());
  const T* ap = a.data();
  R* op = out.data();
  parallel_for(a.size(), [&](Size i) { op[i] = f(ap[i]); });
  stats().record(a.size());
  stats().record_alloc(out.recycled());
  return out;
}

template <typename R, typename T, typename U, typename F>
Vec<R> zip(const Vec<T>& a, const Vec<U>& b, const char* name, F&& f) {
  require_same_length(a, b, name);
  Vec<R> out(a.size());
  const T* ap = a.data();
  const U* bp = b.data();
  R* op = out.data();
  parallel_for(a.size(), [&](Size i) { op[i] = f(ap[i], bp[i]); });
  stats().record(a.size());
  stats().record_alloc(out.recycled());
  return out;
}

template <typename R, typename T, typename U, typename F>
Vec<R> zip_vs(const Vec<T>& a, U b, F&& f) {
  Vec<R> out(a.size());
  const T* ap = a.data();
  R* op = out.data();
  parallel_for(a.size(), [&](Size i) { op[i] = f(ap[i], b); });
  stats().record(a.size());
  stats().record_alloc(out.recycled());
  return out;
}

template <typename R, typename T, typename U, typename F>
Vec<R> zip_sv(T a, const Vec<U>& b, F&& f) {
  Vec<R> out(b.size());
  const U* bp = b.data();
  R* op = out.data();
  parallel_for(b.size(), [&](Size i) { op[i] = f(a, bp[i]); });
  stats().record(b.size());
  stats().record_alloc(out.recycled());
  return out;
}

[[noreturn]] void throw_div_by_zero();
[[noreturn]] void throw_mod_by_zero();

inline Int checked_div(Int a, Int b) {
  if (b == 0) throw_div_by_zero();
  return a / b;
}

inline Int checked_mod(Int a, Int b) {
  if (b == 0) throw_mod_by_zero();
  return a % b;
}

inline Real checked_div(Real a, Real b) { return a / b; }

}  // namespace detail

// --- arithmetic (Int and Real) ---------------------------------------------

template <typename T>
Vec<T> add(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<T>(a, b, "add", [](T x, T y) { return x + y; });
}
template <typename T>
Vec<T> add(const Vec<T>& a, T b) {
  return detail::zip_vs<T>(a, b, [](T x, T y) { return x + y; });
}

template <typename T>
Vec<T> sub(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<T>(a, b, "sub", [](T x, T y) { return x - y; });
}
template <typename T>
Vec<T> sub(const Vec<T>& a, T b) {
  return detail::zip_vs<T>(a, b, [](T x, T y) { return x - y; });
}
template <typename T>
Vec<T> sub(T a, const Vec<T>& b) {
  return detail::zip_sv<T>(a, b, [](T x, T y) { return x - y; });
}

template <typename T>
Vec<T> mul(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<T>(a, b, "mul", [](T x, T y) { return x * y; });
}
template <typename T>
Vec<T> mul(const Vec<T>& a, T b) {
  return detail::zip_vs<T>(a, b, [](T x, T y) { return x * y; });
}

template <typename T>
Vec<T> div(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<T>(a, b, "div",
                        [](T x, T y) { return detail::checked_div(x, y); });
}
template <typename T>
Vec<T> div(const Vec<T>& a, T b) {
  return detail::zip_vs<T>(a, b,
                           [](T x, T y) { return detail::checked_div(x, y); });
}

inline IntVec mod(const IntVec& a, const IntVec& b) {
  return detail::zip<Int>(
      a, b, "mod", [](Int x, Int y) { return detail::checked_mod(x, y); });
}
inline IntVec mod(const IntVec& a, Int b) {
  return detail::zip_vs<Int>(
      a, b, [](Int x, Int y) { return detail::checked_mod(x, y); });
}

template <typename T>
Vec<T> neg(const Vec<T>& a) {
  return detail::map<T>(a, [](T x) { return -x; });
}

template <typename T>
Vec<T> abs(const Vec<T>& a) {
  return detail::map<T>(a, [](T x) { return x < 0 ? -x : x; });
}

template <typename T>
Vec<T> min(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<T>(a, b, "min", [](T x, T y) { return x < y ? x : y; });
}

template <typename T>
Vec<T> max(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<T>(a, b, "max", [](T x, T y) { return x < y ? y : x; });
}

// --- comparisons (yield BoolVec) -------------------------------------------

template <typename T>
BoolVec lt(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<Bool>(a, b, "lt",
                           [](T x, T y) { return Bool(x < y ? 1 : 0); });
}
template <typename T>
BoolVec lt(const Vec<T>& a, T b) {
  return detail::zip_vs<Bool>(a, b,
                              [](T x, T y) { return Bool(x < y ? 1 : 0); });
}

template <typename T>
BoolVec le(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<Bool>(a, b, "le",
                           [](T x, T y) { return Bool(x <= y ? 1 : 0); });
}
template <typename T>
BoolVec le(const Vec<T>& a, T b) {
  return detail::zip_vs<Bool>(a, b,
                              [](T x, T y) { return Bool(x <= y ? 1 : 0); });
}

template <typename T>
BoolVec gt(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<Bool>(a, b, "gt",
                           [](T x, T y) { return Bool(x > y ? 1 : 0); });
}
template <typename T>
BoolVec gt(const Vec<T>& a, T b) {
  return detail::zip_vs<Bool>(a, b,
                              [](T x, T y) { return Bool(x > y ? 1 : 0); });
}

template <typename T>
BoolVec ge(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<Bool>(a, b, "ge",
                           [](T x, T y) { return Bool(x >= y ? 1 : 0); });
}
template <typename T>
BoolVec ge(const Vec<T>& a, T b) {
  return detail::zip_vs<Bool>(a, b,
                              [](T x, T y) { return Bool(x >= y ? 1 : 0); });
}

template <typename T>
BoolVec eq(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<Bool>(a, b, "eq",
                           [](T x, T y) { return Bool(x == y ? 1 : 0); });
}
template <typename T>
BoolVec eq(const Vec<T>& a, T b) {
  return detail::zip_vs<Bool>(a, b,
                              [](T x, T y) { return Bool(x == y ? 1 : 0); });
}

template <typename T>
BoolVec ne(const Vec<T>& a, const Vec<T>& b) {
  return detail::zip<Bool>(a, b, "ne",
                           [](T x, T y) { return Bool(x != y ? 1 : 0); });
}
template <typename T>
BoolVec ne(const Vec<T>& a, T b) {
  return detail::zip_vs<Bool>(a, b,
                              [](T x, T y) { return Bool(x != y ? 1 : 0); });
}

// --- boolean connectives ----------------------------------------------------

inline BoolVec logical_not(const BoolVec& a) {
  return detail::map<Bool>(a, [](Bool x) { return Bool(x ? 0 : 1); });
}

inline BoolVec logical_and(const BoolVec& a, const BoolVec& b) {
  return detail::zip<Bool>(
      a, b, "and", [](Bool x, Bool y) { return Bool((x && y) ? 1 : 0); });
}

inline BoolVec logical_or(const BoolVec& a, const BoolVec& b) {
  return detail::zip<Bool>(
      a, b, "or", [](Bool x, Bool y) { return Bool((x || y) ? 1 : 0); });
}

inline BoolVec logical_xor(const BoolVec& a, const BoolVec& b) {
  return detail::zip<Bool>(a, b, "xor", [](Bool x, Bool y) {
    return Bool((!x != !y) ? 1 : 0);
  });
}

// --- select ------------------------------------------------------------------

/// select(m, a, b)[i] == m[i] ? a[i] : b[i]; all three conformable.
template <typename T>
Vec<T> select(const BoolVec& m, const Vec<T>& a, const Vec<T>& b) {
  require_same_length(m, a, "select");
  require_same_length(m, b, "select");
  Vec<T> out(m.size());
  const Bool* mp = m.data();
  const T* ap = a.data();
  const T* bp = b.data();
  T* op = out.data();
  detail::parallel_for(m.size(), [&](Size i) { op[i] = mp[i] ? ap[i] : bp[i]; });
  stats().record(m.size());
  stats().record_alloc(out.recycled());
  return out;
}

/// Elementwise square root (Real only).
inline RealVec sqrt(const RealVec& a) {
  return detail::map<Real>(a, [](Real x) { return std::sqrt(x); });
}

/// Int -> Real widening (used by the mixed-arithmetic overloads of P).
inline RealVec to_real(const IntVec& a) {
  return detail::map<Real>(a, [](Int x) { return static_cast<Real>(x); });
}

/// Real -> Int truncation.
inline IntVec to_int(const RealVec& a) {
  return detail::map<Int>(a, [](Real x) { return static_cast<Int>(x); });
}

}  // namespace proteus::vl
