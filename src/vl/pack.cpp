#include "vl/pack.hpp"

#include "vl/kernel.hpp"
#include "vl/reduce.hpp"
#include "vl/scan.hpp"
#include "vl/segdesc.hpp"

namespace proteus::vl {

namespace detail {

namespace {

/// Exclusive scan of the mask interpreted as 0/1 counts: destination slot
/// of each surviving element, plus the survivor count.
IntVec mask_offsets(const BoolVec& mask, Size* survivors) {
  IntVec counts(mask.size());
  const Bool* mp = mask.data();
  Int* cp = counts.data();
  parallel_for(mask.size(), [&](Size i) { cp[i] = mp[i] ? 1 : 0; });
  Int total = 0;
  IntVec offsets = scan_add_total(counts, total);
  *survivors = total;
  return offsets;
}

}  // namespace

template <typename T>
Vec<T> pack_impl(const Vec<T>& values, const BoolVec& mask) {
  require_same_length(values, mask, "restrict");
  Size survivors = 0;
  IntVec offsets = mask_offsets(mask, &survivors);
  Vec<T> out(survivors);
  const T* vp = values.data();
  const Bool* mp = mask.data();
  const Int* op_ = offsets.data();
  T* rp = out.data();
  parallel_for(values.size(), [&](Size i) {
    if (mp[i]) rp[op_[i]] = vp[i];
  });
  stats().record(values.size());
  return out;
}

template <typename T>
Vec<T> combine_impl(const BoolVec& mask, const Vec<T>& when_true,
                    const Vec<T>& when_false) {
  PROTEUS_REQUIRE(VectorError,
                  mask.size() == when_true.size() + when_false.size(),
                  "combine: #M must equal #V + #U");
  Size survivors = 0;
  IntVec offsets = mask_offsets(mask, &survivors);
  PROTEUS_REQUIRE(VectorError, survivors == when_true.size(),
                  "combine: mask true-count does not match #V");
  Vec<T> out(mask.size());
  const Bool* mp = mask.data();
  const Int* op_ = offsets.data();
  const T* tp = when_true.data();
  const T* fp = when_false.data();
  T* rp = out.data();
  parallel_for(mask.size(), [&](Size i) {
    // Element i comes from when_true if mask[i], indexed by the number of
    // true positions before i; otherwise from when_false, indexed by the
    // number of false positions before i.
    rp[i] = mp[i] ? tp[op_[i]] : fp[i - op_[i]];
  });
  stats().record(mask.size());
  return out;
}

template IntVec pack_impl<Int>(const IntVec&, const BoolVec&);
template RealVec pack_impl<Real>(const RealVec&, const BoolVec&);
template BoolVec pack_impl<Bool>(const BoolVec&, const BoolVec&);
template IntVec combine_impl<Int>(const BoolVec&, const IntVec&,
                                  const IntVec&);
template RealVec combine_impl<Real>(const BoolVec&, const RealVec&,
                                    const RealVec&);
template BoolVec combine_impl<Bool>(const BoolVec&, const BoolVec&,
                                    const BoolVec&);

}  // namespace detail

IntVec pack_indices(const BoolVec& mask) {
  IntVec all(mask.size());
  Int* p = all.data();
  detail::parallel_for(mask.size(), [&](Size i) { p[i] = i; });
  stats().record(mask.size());
  return pack(all, mask);
}

IntVec seg_pack_lengths(const IntVec& seg_lengths, const BoolVec& mask) {
  require_descriptor(seg_lengths, mask.size(), "seg_pack_lengths");
  IntVec counts(mask.size());
  const Bool* mp = mask.data();
  Int* cp = counts.data();
  detail::parallel_for(mask.size(), [&](Size i) { cp[i] = mp[i] ? 1 : 0; });
  stats().record(mask.size());
  return seg_reduce_add(counts, seg_lengths);
}

template <typename T>
Vec<T> concat(const Vec<T>& a, const Vec<T>& b) {
  Vec<T> out(a.size() + b.size());
  const T* ap = a.data();
  const T* bp = b.data();
  T* op = out.data();
  detail::parallel_for(a.size(), [&](Size i) { op[i] = ap[i]; });
  detail::parallel_for(b.size(), [&](Size i) { op[a.size() + i] = bp[i]; });
  stats().record(out.size());
  return out;
}

template IntVec concat<Int>(const IntVec&, const IntVec&);
template RealVec concat<Real>(const RealVec&, const RealVec&);
template BoolVec concat<Bool>(const BoolVec&, const BoolVec&);

}  // namespace proteus::vl
