// distribute.hpp — replication and index-generation primitives.
//
// These realize the two functions the paper singles out in Section 3 as
// sufficient (together with their parallel extensions) to rebuild every
// bound-variable reference inside nested iterators:
//
//   range1(n)   = [1..n]                 -> iota1
//   dist(c, r)  = [i <- [1..r]: c]       -> dist
//   range1^1    = segmented iota          -> seg_iota1
//   dist^1      = segmented distribute    -> seg_dist
#pragma once

#include "vl/vec.hpp"

namespace proteus::vl {

namespace detail {
template <typename T>
Vec<T> dist_impl(T value, Size n);

template <typename T>
Vec<T> seg_dist_impl(const Vec<T>& values, const IntVec& counts);
}  // namespace detail

/// [start, start+1, ..., start+n-1]
[[nodiscard]] IntVec iota(Size n, Int start);

/// range1(n) = [1..n]; n < 0 yields the empty sequence (as does [1..0]).
[[nodiscard]] IntVec iota1(Int n);

/// range1^1: concatenated [1..counts[0]], [1..counts[1]], ... The result's
/// descriptor is `counts` itself.
[[nodiscard]] IntVec seg_iota1(const IntVec& counts);

/// dist(c, n): n copies of the scalar c.
template <typename T>
Vec<T> dist(T value, Size n) {
  return detail::dist_impl(value, n);
}

/// dist^1: values[i] replicated counts[i] times, concatenated. The result's
/// descriptor is `counts`.
template <typename T>
Vec<T> seg_dist(const Vec<T>& values, const IntVec& counts) {
  return detail::seg_dist_impl(values, counts);
}

/// General range with step ([e1..e2] of P is range(e1, e2, 1)); empty when
/// the step moves away from `hi`.
[[nodiscard]] IntVec range(Int lo, Int hi, Int step);

}  // namespace proteus::vl
