#include "vl/scan.hpp"

#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace proteus::vl {

namespace detail {

void require_segments_cover(Size values, const IntVec& seg_lengths,
                            const char* op) {
  Size sum = 0;
  for (Size i = 0; i < seg_lengths.size(); ++i) {
    Int len = seg_lengths.data()[i];
    PROTEUS_REQUIRE(VectorError, len >= 0,
                    std::string(op) + ": negative segment length");
    sum += len;
  }
  PROTEUS_REQUIRE(VectorError, sum == values,
                  std::string(op) + ": segment lengths sum to " +
                      std::to_string(sum) + " but value vector has " +
                      std::to_string(values) + " elements");
}

namespace {

/// Blocked two-pass parallel scan; falls back to a serial loop whenever the
/// serial backend is active or the vector is short.
template <typename T, typename Op, bool Inclusive>
Vec<T> scan_blocked(const Vec<T>& in, T* total) {
  const Size n = in.size();
  Vec<T> out(n);
  const T* ip = in.data();
  T* op = out.data();

#ifdef _OPENMP
  if (use_threads(n)) {
    const int threads = omp_get_max_threads();
    const Size block = (n + threads - 1) / threads;
    std::vector<T> block_sum(static_cast<std::size_t>(threads),
                             Op::identity());
#pragma omp parallel num_threads(threads)
    {
      const int t = omp_get_thread_num();
      const Size lo = static_cast<Size>(t) * block;
      const Size hi = lo + block < n ? lo + block : n;
      T acc = Op::identity();
      for (Size i = lo; i < hi; ++i) {
        if constexpr (Inclusive) {
          acc = Op::combine(acc, ip[i]);
          op[i] = acc;
        } else {
          op[i] = acc;
          acc = Op::combine(acc, ip[i]);
        }
      }
      block_sum[static_cast<std::size_t>(t)] = acc;
#pragma omp barrier
#pragma omp single
      {
        T run = Op::identity();
        for (int b = 0; b < threads; ++b) {
          T s = block_sum[static_cast<std::size_t>(b)];
          block_sum[static_cast<std::size_t>(b)] = run;
          run = Op::combine(run, s);
        }
        if (total != nullptr) *total = run;
      }
      const T offset = block_sum[static_cast<std::size_t>(t)];
      for (Size i = lo; i < hi; ++i) {
        op[i] = Op::combine(offset, op[i]);
      }
    }
    stats().record(n);
    return out;
  }
#endif

  T acc = Op::identity();
  for (Size i = 0; i < n; ++i) {
    if constexpr (Inclusive) {
      acc = Op::combine(acc, ip[i]);
      op[i] = acc;
    } else {
      op[i] = acc;
      acc = Op::combine(acc, ip[i]);
    }
  }
  if (total != nullptr) *total = acc;
  stats().record(n);
  return out;
}

/// Blelloch's flag/value-pair segmented scan over the FLAT vector:
/// combine((f1,v1),(f2,v2)) = (f1|f2, f2 ? v2 : v1+v2) is associative, so
/// the standard blocked two-pass algorithm applies. This path keeps every
/// thread busy even when one segment holds most of the data (the
/// load-balance property the paper claims for flattened execution).
template <typename T, typename Op, bool Inclusive>
Vec<T> seg_scan_flat(const Vec<T>& in, const IntVec& seg_lengths) {
#ifdef _OPENMP
  const Size n = in.size();
  Vec<T> out(n);
  const T* ip = in.data();
  T* op = out.data();

  // Head flags at the start of every nonempty segment.
  std::vector<std::uint8_t> head(static_cast<std::size_t>(n), 0);
  {
    Size pos = 0;
    for (Size s = 0; s < seg_lengths.size(); ++s) {
      if (seg_lengths.data()[s] > 0) head[std::size_t(pos)] = 1;
      pos += seg_lengths.data()[s];
    }
  }

  const int threads = omp_get_max_threads();
  const Size block = (n + threads - 1) / threads;
  std::vector<T> carry_val(static_cast<std::size_t>(threads), Op::identity());
  std::vector<std::uint8_t> carry_flag(static_cast<std::size_t>(threads), 0);

#pragma omp parallel num_threads(threads)
  {
    const int t = omp_get_thread_num();
    const Size lo = static_cast<Size>(t) * block;
    const Size hi = lo + block < n ? lo + block : n;
    // Pass 1: per-block inclusive pair-scan; remember the block's summary.
    T acc = Op::identity();
    std::uint8_t flagged = 0;
    for (Size i = lo; i < hi; ++i) {
      if (head[std::size_t(i)]) {
        acc = ip[i];
        flagged = 1;
      } else {
        acc = Op::combine(acc, ip[i]);
      }
      op[i] = acc;
    }
    carry_val[std::size_t(t)] = acc;
    carry_flag[std::size_t(t)] = flagged;
#pragma omp barrier
#pragma omp single
    {
      // Exclusive pair-scan of the block summaries.
      T run = Op::identity();
      std::uint8_t run_flag = 0;
      for (int b = 0; b < threads; ++b) {
        T v = carry_val[std::size_t(b)];
        std::uint8_t f = carry_flag[std::size_t(b)];
        carry_val[std::size_t(b)] = run;
        carry_flag[std::size_t(b)] = run_flag;
        run = f ? v : Op::combine(run, v);
        run_flag = std::uint8_t(run_flag | f);
      }
    }
    // Pass 2: fold the incoming carry into positions before the block's
    // first segment head.
    const T carry = carry_val[std::size_t(t)];
    for (Size i = lo; i < hi; ++i) {
      if (head[std::size_t(i)]) break;
      op[i] = Op::combine(carry, op[i]);
    }
  }

  if constexpr (!Inclusive) {
    // Exclusive from inclusive: shift within segments.
    Vec<T> excl(n);
    T* ep = excl.data();
#pragma omp parallel for schedule(static)
    for (Size i = 0; i < n; ++i) {
      ep[i] = head[std::size_t(i)] ? Op::identity() : op[i - 1];
    }
    stats().record(in.size());
    stats().record_segments(seg_lengths.size());
    return excl;
  }
  stats().record(in.size());
  stats().record_segments(seg_lengths.size());
  return out;
#else
  (void)seg_lengths;
  return in;  // unreachable: caller guards with use_threads()
#endif
}

/// Segmented scan. Serial backend (and short vectors): one pass per
/// segment. OpenMP backend: the flat flag/value-pair algorithm above,
/// which balances even when one segment dominates.
template <typename T, typename Op, bool Inclusive>
Vec<T> seg_scan(const Vec<T>& in, const IntVec& seg_lengths, const char* name) {
  require_segments_cover(in.size(), seg_lengths, name);
  if (use_threads(in.size())) {
    return seg_scan_flat<T, Op, Inclusive>(in, seg_lengths);
  }
  const Size nseg = seg_lengths.size();
  Vec<T> out(in.size());
  const T* ip = in.data();
  T* op = out.data();

  // Per-segment start offsets (serial: descriptor vectors are usually far
  // shorter than value vectors).
  IntVec offsets(nseg);
  Int run = 0;
  for (Size s = 0; s < nseg; ++s) {
    offsets.data()[s] = run;
    run += seg_lengths.data()[s];
  }

  for (Size s = 0; s < nseg; ++s) {
    const Size lo = offsets.data()[s];
    const Size hi = lo + seg_lengths.data()[s];
    T acc = Op::identity();
    for (Size i = lo; i < hi; ++i) {
      if constexpr (Inclusive) {
        acc = Op::combine(acc, ip[i]);
        op[i] = acc;
      } else {
        op[i] = acc;
        acc = Op::combine(acc, ip[i]);
      }
    }
  }
  stats().record(in.size());
  stats().record_segments(nseg);
  return out;
}

}  // namespace

template <typename T, typename Op>
Vec<T> scan_exclusive_impl(const Vec<T>& in, T* total) {
  return scan_blocked<T, Op, false>(in, total);
}

template <typename T, typename Op>
Vec<T> scan_inclusive_impl(const Vec<T>& in) {
  return scan_blocked<T, Op, true>(in, nullptr);
}

template <typename T, typename Op>
Vec<T> seg_scan_exclusive_impl(const Vec<T>& in, const IntVec& seg_lengths) {
  return seg_scan<T, Op, false>(in, seg_lengths, "seg_scan");
}

template <typename T, typename Op>
Vec<T> seg_scan_inclusive_impl(const Vec<T>& in, const IntVec& seg_lengths) {
  return seg_scan<T, Op, true>(in, seg_lengths, "seg_scan_inclusive");
}

// Explicit instantiations for the scalar carriers of V.
template IntVec scan_exclusive_impl<Int, AddOp<Int>>(const IntVec&, Int*);
template IntVec scan_inclusive_impl<Int, AddOp<Int>>(const IntVec&);
template IntVec scan_exclusive_impl<Int, MaxOp<Int>>(const IntVec&, Int*);
template IntVec scan_inclusive_impl<Int, MaxOp<Int>>(const IntVec&);
template IntVec scan_exclusive_impl<Int, MinOp<Int>>(const IntVec&, Int*);
template IntVec scan_inclusive_impl<Int, MinOp<Int>>(const IntVec&);
template RealVec scan_exclusive_impl<Real, AddOp<Real>>(const RealVec&, Real*);
template RealVec scan_inclusive_impl<Real, AddOp<Real>>(const RealVec&);
template RealVec scan_exclusive_impl<Real, MaxOp<Real>>(const RealVec&, Real*);
template RealVec scan_inclusive_impl<Real, MaxOp<Real>>(const RealVec&);
template RealVec scan_exclusive_impl<Real, MinOp<Real>>(const RealVec&, Real*);
template RealVec scan_inclusive_impl<Real, MinOp<Real>>(const RealVec&);

template IntVec seg_scan_exclusive_impl<Int, AddOp<Int>>(const IntVec&,
                                                         const IntVec&);
template IntVec seg_scan_inclusive_impl<Int, AddOp<Int>>(const IntVec&,
                                                         const IntVec&);
template IntVec seg_scan_exclusive_impl<Int, MaxOp<Int>>(const IntVec&,
                                                         const IntVec&);
template IntVec seg_scan_inclusive_impl<Int, MaxOp<Int>>(const IntVec&,
                                                         const IntVec&);
template IntVec seg_scan_exclusive_impl<Int, MinOp<Int>>(const IntVec&,
                                                         const IntVec&);
template IntVec seg_scan_inclusive_impl<Int, MinOp<Int>>(const IntVec&,
                                                         const IntVec&);
template RealVec seg_scan_exclusive_impl<Real, AddOp<Real>>(const RealVec&,
                                                            const IntVec&);
template RealVec seg_scan_inclusive_impl<Real, AddOp<Real>>(const RealVec&,
                                                            const IntVec&);
template RealVec seg_scan_exclusive_impl<Real, MaxOp<Real>>(const RealVec&,
                                                            const IntVec&);
template RealVec seg_scan_inclusive_impl<Real, MaxOp<Real>>(const RealVec&,
                                                            const IntVec&);
template RealVec seg_scan_exclusive_impl<Real, MinOp<Real>>(const RealVec&,
                                                            const IntVec&);
template RealVec seg_scan_inclusive_impl<Real, MinOp<Real>>(const RealVec&,
                                                            const IntVec&);

}  // namespace detail

BoolVec scan_or(const BoolVec& v) {
  return detail::scan_exclusive_impl<Bool, detail::OrOp>(v, nullptr);
}
BoolVec scan_or_inclusive(const BoolVec& v) {
  return detail::scan_inclusive_impl<Bool, detail::OrOp>(v);
}
BoolVec scan_and(const BoolVec& v) {
  return detail::scan_exclusive_impl<Bool, detail::AndOp>(v, nullptr);
}
BoolVec scan_and_inclusive(const BoolVec& v) {
  return detail::scan_inclusive_impl<Bool, detail::AndOp>(v);
}

BoolVec seg_scan_or(const BoolVec& v, const IntVec& seg_lengths) {
  return detail::seg_scan_exclusive_impl<Bool, detail::OrOp>(v, seg_lengths);
}
BoolVec seg_scan_and(const BoolVec& v, const IntVec& seg_lengths) {
  return detail::seg_scan_exclusive_impl<Bool, detail::AndOp>(v, seg_lengths);
}

}  // namespace proteus::vl
