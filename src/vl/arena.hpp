// arena.hpp — the per-evaluation recycling arena behind the memory plan.
//
// The analyzer (analysis/lifetime.hpp) proves most vl buffers die at a
// statically known instruction; the VM's planned path clears dead
// registers there, which drops the last reference and destroys the
// backing Vec. With an arena scope active, that destructor *donates* its
// heap buffer (and the governor bytes already charged for it) to a
// thread-local pool instead of freeing it, and the next sized Vec
// construction *acquires* a pooled buffer of the right type and capacity
// instead of calling the allocator. The effect is slot reuse: quicksort's
// ~4k per-evaluation allocations collapse into a few dozen that then
// circulate (ROADMAP "arena/pool allocator" item).
//
// Accounting invariants:
//   * pooled buffers stay charged against the rt:: resident-byte budget
//     (the charge travels with the buffer: donate banks it, acquire hands
//     it to the new owner) — `charge_bytes` totals remain truthful, which
//     is why plans publish a peak bound of 2x the live watermark and the
//     VM caps the pool at bound/2 (see docs/VM.md),
//   * donate/acquire never call the governor, so they are safely noexcept
//     and usable from ~Vec,
//   * the pool refuses donations beyond its cap or smaller than one cache
//     line's worth; refused buffers free normally.
//
// No header in vl/ below this one is included here: vec.hpp includes
// arena.hpp, so the pool traffics in raw std::vector storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace proteus::vl::arena {

/// Opens a per-evaluation arena on this thread; nested scopes stack, and
/// all pool traffic goes to the innermost one. Destruction frees every
/// still-pooled buffer and releases its banked governor charge.
class Scope {
 public:
  /// `cap_bytes` bounds the governor bytes the pool may hold at once
  /// (0 = refuse everything: an inert scope).
  explicit Scope(std::uint64_t cap_bytes);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// True when a Scope is open on this thread.
[[nodiscard]] bool active() noexcept;

/// Innermost pool's banked charge / buffer count (0/0 when inactive).
struct Totals {
  std::uint64_t held_bytes = 0;
  std::uint64_t buffers = 0;
};
[[nodiscard]] Totals totals() noexcept;

/// Hands `out` a pooled buffer with capacity >= n (same element type) and
/// stores the governor charge that travels with it in `charged`. Returns
/// false — leaving `out` untouched — when inactive or nothing fits.
[[nodiscard]] bool try_acquire(std::size_t n, std::vector<std::int64_t>& out,
                               std::uint64_t& charged) noexcept;
[[nodiscard]] bool try_acquire(std::size_t n, std::vector<double>& out,
                               std::uint64_t& charged) noexcept;
[[nodiscard]] bool try_acquire(std::size_t n, std::vector<std::uint8_t>& out,
                               std::uint64_t& charged) noexcept;

/// Banks a dying buffer and its outstanding governor charge. Returns
/// false — leaving `v` untouched, charge still the caller's to release —
/// when inactive, the buffer is too small to bother, or the pool is full.
[[nodiscard]] bool try_donate(std::vector<std::int64_t>&& v,
                              std::uint64_t charged) noexcept;
[[nodiscard]] bool try_donate(std::vector<double>&& v,
                              std::uint64_t charged) noexcept;
[[nodiscard]] bool try_donate(std::vector<std::uint8_t>&& v,
                              std::uint64_t charged) noexcept;

/// Catch-alls for Vec<T> instantiations the pool does not carry.
template <typename T>
[[nodiscard]] inline bool try_acquire(std::size_t /*n*/,
                                      std::vector<T>& /*out*/,
                                      std::uint64_t& /*charged*/) noexcept {
  return false;
}
template <typename T>
[[nodiscard]] inline bool try_donate(std::vector<T>&& /*v*/,
                                     std::uint64_t /*charged*/) noexcept {
  return false;
}

}  // namespace proteus::vl::arena
