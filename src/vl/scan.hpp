// scan.hpp — scan (parallel-prefix) primitives and their segmented forms.
//
// Scans are the workhorse of the vector model: the flattening translation
// compiles iterator bookkeeping (positions within frames, filter offsets,
// divide-and-conquer splits) into +-scans over flat vectors. The segmented
// variants restart the scan at every segment boundary given by a
// descriptor (segment-length) vector, which is exactly how one vector
// primitive performs "one scan per subsequence" for nested sequences.
//
// The OpenMP realization is the standard blocked two-pass algorithm:
// per-block serial scan, serial scan of block sums, then a parallel fixup.
#pragma once

#include <limits>

#include "vl/kernel.hpp"
#include "vl/vec.hpp"

namespace proteus::vl {

namespace detail {

template <typename T>
struct AddOp {
  static constexpr T identity() { return T{0}; }
  static T combine(T a, T b) { return a + b; }
};

template <typename T>
struct MaxOp {
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  static T combine(T a, T b) { return a < b ? b : a; }
};

template <typename T>
struct MinOp {
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  static T combine(T a, T b) { return b < a ? b : a; }
};

struct OrOp {
  static constexpr Bool identity() { return 0; }
  static Bool combine(Bool a, Bool b) { return Bool((a || b) ? 1 : 0); }
};

struct AndOp {
  static constexpr Bool identity() { return 1; }
  static Bool combine(Bool a, Bool b) { return Bool((a && b) ? 1 : 0); }
};

/// Exclusive scan: out[i] = op(identity, in[0..i)). Returns the total
/// reduction through `total` so callers get lengths->offsets in one pass.
template <typename T, typename Op>
Vec<T> scan_exclusive_impl(const Vec<T>& in, T* total);

/// Inclusive scan: out[i] = op(in[0..i]).
template <typename T, typename Op>
Vec<T> scan_inclusive_impl(const Vec<T>& in);

/// Segmented exclusive scan with segments given by a length vector.
template <typename T, typename Op>
Vec<T> seg_scan_exclusive_impl(const Vec<T>& in, const IntVec& seg_lengths);

/// Segmented inclusive scan with segments given by a length vector.
template <typename T, typename Op>
Vec<T> seg_scan_inclusive_impl(const Vec<T>& in, const IntVec& seg_lengths);

void require_segments_cover(Size values, const IntVec& seg_lengths,
                            const char* op);

}  // namespace detail

// --- unsegmented -------------------------------------------------------------

template <typename T>
Vec<T> scan_add(const Vec<T>& v) {
  return detail::scan_exclusive_impl<T, detail::AddOp<T>>(v, nullptr);
}
template <typename T>
Vec<T> scan_add_inclusive(const Vec<T>& v) {
  return detail::scan_inclusive_impl<T, detail::AddOp<T>>(v);
}

template <typename T>
Vec<T> scan_max(const Vec<T>& v) {
  return detail::scan_exclusive_impl<T, detail::MaxOp<T>>(v, nullptr);
}
template <typename T>
Vec<T> scan_max_inclusive(const Vec<T>& v) {
  return detail::scan_inclusive_impl<T, detail::MaxOp<T>>(v);
}

template <typename T>
Vec<T> scan_min(const Vec<T>& v) {
  return detail::scan_exclusive_impl<T, detail::MinOp<T>>(v, nullptr);
}
template <typename T>
Vec<T> scan_min_inclusive(const Vec<T>& v) {
  return detail::scan_inclusive_impl<T, detail::MinOp<T>>(v);
}

BoolVec scan_or(const BoolVec& v);
BoolVec scan_or_inclusive(const BoolVec& v);
BoolVec scan_and(const BoolVec& v);
BoolVec scan_and_inclusive(const BoolVec& v);

/// Exclusive +-scan that also reports the grand total (lengths->offsets).
template <typename T>
Vec<T> scan_add_total(const Vec<T>& v, T& total) {
  return detail::scan_exclusive_impl<T, detail::AddOp<T>>(v, &total);
}

// --- segmented ---------------------------------------------------------------

template <typename T>
Vec<T> seg_scan_add(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_scan_exclusive_impl<T, detail::AddOp<T>>(v, seg_lengths);
}
template <typename T>
Vec<T> seg_scan_add_inclusive(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_scan_inclusive_impl<T, detail::AddOp<T>>(v, seg_lengths);
}

template <typename T>
Vec<T> seg_scan_max(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_scan_exclusive_impl<T, detail::MaxOp<T>>(v, seg_lengths);
}
template <typename T>
Vec<T> seg_scan_max_inclusive(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_scan_inclusive_impl<T, detail::MaxOp<T>>(v, seg_lengths);
}

template <typename T>
Vec<T> seg_scan_min(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_scan_exclusive_impl<T, detail::MinOp<T>>(v, seg_lengths);
}
template <typename T>
Vec<T> seg_scan_min_inclusive(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_scan_inclusive_impl<T, detail::MinOp<T>>(v, seg_lengths);
}

BoolVec seg_scan_or(const BoolVec& v, const IntVec& seg_lengths);
BoolVec seg_scan_and(const BoolVec& v, const IntVec& seg_lengths);

}  // namespace proteus::vl
