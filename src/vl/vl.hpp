// vl.hpp — umbrella header for the flat vector library (the CVL analogue
// of the paper's target notation V). See DESIGN.md §3 for the inventory.
#pragma once

#include "vl/backend.hpp"
#include "vl/check.hpp"
#include "vl/distribute.hpp"
#include "vl/elementwise.hpp"
#include "vl/pack.hpp"
#include "vl/permute.hpp"
#include "vl/reduce.hpp"
#include "vl/scan.hpp"
#include "vl/segdesc.hpp"
#include "vl/vec.hpp"
