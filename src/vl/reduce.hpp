// reduce.hpp — reductions and segmented reductions.
//
// reduce_* collapse a whole vector to one scalar; seg_reduce_* produce one
// result per segment of a descriptor vector. The segmented forms are how a
// single vector primitive performs "one reduction per subsequence" of a
// nested sequence — the higher-order `reduce` of the source language P
// lowers to these when its argument function is a known primitive, and to
// the flattened user function otherwise.
#pragma once

#include "vl/scan.hpp"
#include "vl/vec.hpp"

namespace proteus::vl {

namespace detail {

template <typename T, typename Op>
T reduce_impl(const Vec<T>& v);

template <typename T, typename Op>
Vec<T> seg_reduce_impl(const Vec<T>& v, const IntVec& seg_lengths);

}  // namespace detail

template <typename T>
T reduce_add(const Vec<T>& v) {
  return detail::reduce_impl<T, detail::AddOp<T>>(v);
}

/// Max over the vector; identity (numeric lowest) on an empty vector.
template <typename T>
T reduce_max(const Vec<T>& v) {
  return detail::reduce_impl<T, detail::MaxOp<T>>(v);
}

/// Min over the vector; identity (numeric max) on an empty vector.
template <typename T>
T reduce_min(const Vec<T>& v) {
  return detail::reduce_impl<T, detail::MinOp<T>>(v);
}

Bool reduce_or(const BoolVec& v);
Bool reduce_and(const BoolVec& v);

/// True when any element of a mask is set. Zero-cost alias used by the
/// empty-frame guards of rule R2d.
[[nodiscard]] bool any(const BoolVec& m);
[[nodiscard]] bool all(const BoolVec& m);

/// Number of set elements of a mask (the length of pack(v, m)).
[[nodiscard]] Size count(const BoolVec& m);

template <typename T>
Vec<T> seg_reduce_add(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_reduce_impl<T, detail::AddOp<T>>(v, seg_lengths);
}

template <typename T>
Vec<T> seg_reduce_max(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_reduce_impl<T, detail::MaxOp<T>>(v, seg_lengths);
}

template <typename T>
Vec<T> seg_reduce_min(const Vec<T>& v, const IntVec& seg_lengths) {
  return detail::seg_reduce_impl<T, detail::MinOp<T>>(v, seg_lengths);
}

BoolVec seg_reduce_or(const BoolVec& v, const IntVec& seg_lengths);
BoolVec seg_reduce_and(const BoolVec& v, const IntVec& seg_lengths);

}  // namespace proteus::vl
