// check.hpp — error types and invariant-checking macros shared by every
// layer of proteus-vec.
//
// The library reports all recoverable failures as exceptions derived from
// proteus::Error so callers can distinguish the layer that failed:
//
//   Error                    base of everything
//   |- VectorError           flat vector-library misuse (vl)
//   |- RepresentationError   inconsistent nested-sequence descriptors (seq)
//   |- SyntaxError           lexing / parsing failures (lang)
//   |- TypeError             static type-checking failures (lang)
//   |- TransformError        iterator-elimination failures (xform)
//   |- EvalError             runtime failures in either engine (interp/exec)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace proteus {

/// Base class for every error raised by the proteus-vec library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Misuse of the flat vector library (length mismatch, bad index vector...).
class VectorError : public Error {
 public:
  explicit VectorError(const std::string& what) : Error(what) {}
};

/// Violation of the nested-sequence representation invariants (Section 4.1).
class RepresentationError : public Error {
 public:
  explicit RepresentationError(const std::string& what) : Error(what) {}
};

/// Lexical or grammatical error in a P source text.
class SyntaxError : public Error {
 public:
  explicit SyntaxError(const std::string& what) : Error(what) {}
};

/// Static typing error in a P program.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error(what) {}
};

/// Failure while applying the transformation rules of Section 3/4.
class TransformError : public Error {
 public:
  explicit TransformError(const std::string& what) : Error(what) {}
};

/// Runtime evaluation error (index out of range, division by zero, ...).
class EvalError : public Error {
 public:
  explicit EvalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace proteus

/// PROTEUS_REQUIRE(ExceptionType, condition, message)
/// Throws `ExceptionType` describing `condition` when it does not hold.
/// Used for argument validation that must stay active in release builds.
#define PROTEUS_REQUIRE(Exc, cond, msg)                       \
  do {                                                        \
    if (!(cond)) {                                            \
      throw Exc(std::string(msg) + " [failed: " #cond "]");   \
    }                                                         \
  } while (0)

/// PROTEUS_ASSERT(condition, message) — internal invariant; always active
/// (the library is a research artifact: we prefer loud failure to silent
/// corruption), reported as proteus::Error.
#define PROTEUS_ASSERT(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::proteus::detail::throw_check_failure("assertion", #cond, __FILE__, \
                                             __LINE__, (msg));             \
    }                                                                      \
  } while (0)
