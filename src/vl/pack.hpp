// pack.hpp — pack (the paper's `restrict`) and combine, plus the segmented
// forms needed when whole segments are filtered.
//
// restrict(V, M) keeps the elements of V at true positions of M;
// combine(M, V, U) is its two-sided inverse:
//     restrict(combine(M,V,U), M) == V
//     restrict(combine(M,V,U), not M) == U
// These two primitives are how rule R2d routes data into the then/else
// branches of a flattened conditional and reassembles the results.
#pragma once

#include "vl/vec.hpp"

namespace proteus::vl {

namespace detail {

template <typename T>
Vec<T> pack_impl(const Vec<T>& values, const BoolVec& mask);

template <typename T>
Vec<T> combine_impl(const BoolVec& mask, const Vec<T>& when_true,
                    const Vec<T>& when_false);

}  // namespace detail

/// restrict(V, M): elements of V at the true positions of M, in order.
template <typename T>
Vec<T> pack(const Vec<T>& values, const BoolVec& mask) {
  return detail::pack_impl(values, mask);
}

/// Positions (0-origin) of the true elements of M.
[[nodiscard]] IntVec pack_indices(const BoolVec& mask);

/// combine(M, V, U): interleave V (at true positions) and U (at false
/// positions); requires #M == #V + #U.
template <typename T>
Vec<T> combine(const BoolVec& mask, const Vec<T>& when_true,
               const Vec<T>& when_false) {
  return detail::combine_impl(mask, when_true, when_false);
}

/// Per-segment pack of a descriptor: new segment lengths after packing the
/// value vector with `mask` (the number of survivors in each segment).
[[nodiscard]] IntVec seg_pack_lengths(const IntVec& seg_lengths,
                                      const BoolVec& mask);

/// Concatenate two vectors (used by `combine` on descriptors and by the
/// seq_cons implementation).
template <typename T>
Vec<T> concat(const Vec<T>& a, const Vec<T>& b);

}  // namespace proteus::vl
