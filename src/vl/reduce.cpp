#include "vl/reduce.hpp"

#include "vl/kernel.hpp"

namespace proteus::vl {

namespace detail {

template <typename T, typename Op>
T reduce_impl(const Vec<T>& v) {
  const T* p = v.data();
  T acc = parallel_reduce(
      v.size(), Op::identity(), [&](Size i) { return p[i]; },
      [](T a, T b) { return Op::combine(a, b); });
  stats().record(v.size());
  return acc;
}

template <typename T, typename Op>
Vec<T> seg_reduce_impl(const Vec<T>& v, const IntVec& seg_lengths) {
  require_segments_cover(v.size(), seg_lengths, "seg_reduce");
  const Size nseg = seg_lengths.size();
  Vec<T> out(nseg);
  const T* ip = v.data();
  T* op = out.data();

  IntVec offsets(nseg);
  Int run = 0;
  for (Size s = 0; s < nseg; ++s) {
    offsets.data()[s] = run;
    run += seg_lengths.data()[s];
  }

  parallel_for(nseg, [&](Size s) {
    const Size lo = offsets.data()[s];
    const Size hi = lo + seg_lengths.data()[s];
    T acc = Op::identity();
    for (Size i = lo; i < hi; ++i) acc = Op::combine(acc, ip[i]);
    op[s] = acc;
  });
  stats().record(v.size());
  stats().record_segments(nseg);
  return out;
}

template Int reduce_impl<Int, AddOp<Int>>(const IntVec&);
template Int reduce_impl<Int, MaxOp<Int>>(const IntVec&);
template Int reduce_impl<Int, MinOp<Int>>(const IntVec&);
template Real reduce_impl<Real, AddOp<Real>>(const RealVec&);
template Real reduce_impl<Real, MaxOp<Real>>(const RealVec&);
template Real reduce_impl<Real, MinOp<Real>>(const RealVec&);

template IntVec seg_reduce_impl<Int, AddOp<Int>>(const IntVec&, const IntVec&);
template IntVec seg_reduce_impl<Int, MaxOp<Int>>(const IntVec&, const IntVec&);
template IntVec seg_reduce_impl<Int, MinOp<Int>>(const IntVec&, const IntVec&);
template RealVec seg_reduce_impl<Real, AddOp<Real>>(const RealVec&,
                                                    const IntVec&);
template RealVec seg_reduce_impl<Real, MaxOp<Real>>(const RealVec&,
                                                    const IntVec&);
template RealVec seg_reduce_impl<Real, MinOp<Real>>(const RealVec&,
                                                    const IntVec&);

}  // namespace detail

Bool reduce_or(const BoolVec& v) {
  return detail::reduce_impl<Bool, detail::OrOp>(v);
}

Bool reduce_and(const BoolVec& v) {
  return detail::reduce_impl<Bool, detail::AndOp>(v);
}

bool any(const BoolVec& m) { return reduce_or(m) != 0; }

bool all(const BoolVec& m) { return reduce_and(m) != 0; }

Size count(const BoolVec& m) {
  const Bool* p = m.data();
  Size c = detail::parallel_reduce(
      m.size(), Size{0}, [&](Size i) { return Size(p[i] ? 1 : 0); },
      [](Size a, Size b) { return a + b; });
  stats().record(m.size());
  return c;
}

BoolVec seg_reduce_or(const BoolVec& v, const IntVec& seg_lengths) {
  return detail::seg_reduce_impl<Bool, detail::OrOp>(v, seg_lengths);
}

BoolVec seg_reduce_and(const BoolVec& v, const IntVec& seg_lengths) {
  return detail::seg_reduce_impl<Bool, detail::AndOp>(v, seg_lengths);
}

}  // namespace proteus::vl
