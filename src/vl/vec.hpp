// vec.hpp — the flat vector type of the vector model V.
//
// A Vec<T> is the only aggregate the vector model knows about: a dense,
// contiguous, one-dimensional array of scalars. Every primitive of the
// library (elementwise maps, scans, reductions, permutations, packs,
// distributes and their segmented variants) consumes and produces Vec<T>.
// Nested sequences of the source language P are *represented* as stacks of
// these flat vectors (see seq/nested.hpp), never as pointer structures.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "vl/check.hpp"

namespace proteus::vl {

/// Scalar carrier types of the vector model. `Bool` is a byte, as in CVL,
/// so boolean vectors support the same kernels as integer vectors.
using Int = std::int64_t;
using Real = double;
using Bool = std::uint8_t;

/// Index type used for lengths and positions. Signed (per the C++ Core
/// Guidelines arithmetic rules) so length arithmetic cannot wrap silently.
using Size = std::int64_t;

/// Dense one-dimensional vector of scalars; the sole aggregate of V.
///
/// Vec is a regular value type: copyable, movable, equality-comparable.
/// Element access through operator[] is bounds-checked (loud failure is
/// preferred over silent corruption in a research artifact); kernels that
/// have already validated their inputs iterate over data() spans instead.
template <typename T>
class Vec {
 public:
  using value_type = T;

  Vec() = default;

  /// Uninitialized-by-default construction of `n` zero elements.
  explicit Vec(Size n) : data_(check_size(n)) {}

  Vec(Size n, T fill) : data_(check_size(n), fill) {}

  Vec(std::initializer_list<T> init) : data_(init) {}

  explicit Vec(std::vector<T> v) : data_(std::move(v)) {}

  template <typename It>
  Vec(It first, It last) : data_(first, last) {}

  [[nodiscard]] Size size() const { return static_cast<Size>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T operator[](Size i) const {
    PROTEUS_REQUIRE(VectorError, i >= 0 && i < size(),
                    "vector index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] T& operator[](Size i) {
    PROTEUS_REQUIRE(VectorError, i >= 0 && i < size(),
                    "vector index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  /// Unchecked access for validated kernels.
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] T* data() { return data_.data(); }

  [[nodiscard]] std::span<const T> span() const { return {data_}; }
  [[nodiscard]] std::span<T> span() { return {data_}; }

  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }
  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }

  void push_back(T v) { data_.push_back(v); }
  void reserve(Size n) { data_.reserve(check_size(n)); }
  void resize(Size n) { data_.resize(check_size(n)); }

  [[nodiscard]] const std::vector<T>& raw() const { return data_; }

  friend bool operator==(const Vec&, const Vec&) = default;

 private:
  static std::size_t check_size(Size n) {
    PROTEUS_REQUIRE(VectorError, n >= 0, "vector size must be non-negative");
    return static_cast<std::size_t>(n);
  }

  std::vector<T> data_;
};

using IntVec = Vec<Int>;
using RealVec = Vec<Real>;
using BoolVec = Vec<Bool>;

template <typename T>
std::ostream& operator<<(std::ostream& os, const Vec<T>& v) {
  os << '[';
  for (Size i = 0; i < v.size(); ++i) {
    if (i > 0) os << ',';
    if constexpr (std::is_same_v<T, Bool>) {
      os << (v[i] ? 'T' : 'F');
    } else {
      os << v[i];
    }
  }
  return os << ']';
}

/// Require two vectors to be elementwise conformable (equal length).
template <typename T, typename U>
void require_same_length(const Vec<T>& a, const Vec<U>& b, const char* op) {
  PROTEUS_REQUIRE(VectorError, a.size() == b.size(),
                  std::string(op) + ": operand lengths differ (" +
                      std::to_string(a.size()) + " vs " +
                      std::to_string(b.size()) + ")");
}

}  // namespace proteus::vl
