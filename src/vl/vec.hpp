// vec.hpp — the flat vector type of the vector model V.
//
// A Vec<T> is the only aggregate the vector model knows about: a dense,
// contiguous, one-dimensional array of scalars. Every primitive of the
// library (elementwise maps, scans, reductions, permutations, packs,
// distributes and their segmented variants) consumes and produces Vec<T>.
// Nested sequences of the source language P are *represented* as stacks of
// these flat vectors (see seq/nested.hpp), never as pointer structures.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "rt/governor.hpp"
#include "vl/arena.hpp"
#include "vl/check.hpp"

namespace proteus::vl {

/// Scalar carrier types of the vector model. `Bool` is a byte, as in CVL,
/// so boolean vectors support the same kernels as integer vectors.
using Int = std::int64_t;
using Real = double;
using Bool = std::uint8_t;

/// Index type used for lengths and positions. Signed (per the C++ Core
/// Guidelines arithmetic rules) so length arithmetic cannot wrap silently.
using Size = std::int64_t;

/// Dense one-dimensional vector of scalars; the sole aggregate of V.
///
/// Vec is a regular value type: copyable, movable, equality-comparable.
/// Element access through operator[] is bounds-checked (loud failure is
/// preferred over silent corruption in a research artifact); kernels that
/// have already validated their inputs iterate over data() spans instead.
///
/// Vec is also the governor's allocation charge point: construction,
/// resize, and reserve charge the buffer's capacity bytes against the
/// rt:: resident-byte budget (and the injected-allocation fault plan);
/// destruction releases them. A throwing charge leaves the Vec
/// unconstructed with the accounting rolled back, so a T001/T006 trap
/// cannot leak or double-count. push_back growth is deliberately not
/// re-charged (it is the one hot mutation path; kernels size their
/// outputs up front via the charged constructors/reserve).
template <typename T>
class Vec {
 public:
  using value_type = T;

  Vec() = default;

  /// Uninitialized-by-default construction of `n` zero elements. Sized
  /// construction and copies are the arena's acquisition points: with a
  /// scope active they reuse a pooled buffer instead of allocating.
  explicit Vec(Size n) { init_sized(check_size(n), T{}); }

  Vec(Size n, T fill) { init_sized(check_size(n), fill); }

  Vec(std::initializer_list<T> init) : data_(init) { charge(); }

  explicit Vec(std::vector<T> v) : data_(std::move(v)) { charge(); }

  template <typename It>
  Vec(It first, It last) : data_(first, last) { charge(); }

  Vec(const Vec& other) { init_copy(other.data_); }

  Vec(Vec&& other) noexcept
      : data_(std::move(other.data_)),
        charged_(std::exchange(other.charged_, 0)),
        recycled_(std::exchange(other.recycled_, false)) {}

  Vec& operator=(const Vec& other) {
    if (this != &other) {
      Vec copy(other);  // charge first: a trap leaves *this untouched
      swap(copy);
    }
    return *this;
  }

  Vec& operator=(Vec&& other) noexcept {
    if (this != &other) {
      release_storage();
      data_ = std::move(other.data_);
      charged_ = std::exchange(other.charged_, 0);
      recycled_ = std::exchange(other.recycled_, false);
    }
    return *this;
  }

  ~Vec() { release_storage(); }

  void swap(Vec& other) noexcept {
    data_.swap(other.data_);
    std::swap(charged_, other.charged_);
    std::swap(recycled_, other.recycled_);
  }

  /// True when this buffer came from the evaluation arena rather than the
  /// heap (feeds the vl.arena.* stats split; see backend.hpp).
  [[nodiscard]] bool recycled() const noexcept { return recycled_; }

  [[nodiscard]] Size size() const { return static_cast<Size>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T operator[](Size i) const {
    PROTEUS_REQUIRE(VectorError, i >= 0 && i < size(),
                    "vector index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] T& operator[](Size i) {
    PROTEUS_REQUIRE(VectorError, i >= 0 && i < size(),
                    "vector index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  /// Unchecked access for validated kernels.
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] T* data() { return data_.data(); }

  [[nodiscard]] std::span<const T> span() const { return {data_}; }
  [[nodiscard]] std::span<T> span() { return {data_}; }

  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }
  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }

  void push_back(T v) { data_.push_back(v); }
  void reserve(Size n) {
    data_.reserve(check_size(n));
    recharge();
  }
  void resize(Size n) {
    data_.resize(check_size(n));
    recharge();
  }

  [[nodiscard]] const std::vector<T>& raw() const { return data_; }

  /// Equality is over the elements only — the governor's charge tally is
  /// bookkeeping, not value.
  friend bool operator==(const Vec& a, const Vec& b) {
    return a.data_ == b.data_;
  }

 private:
  static std::size_t check_size(Size n) {
    PROTEUS_REQUIRE(VectorError, n >= 0, "vector size must be non-negative");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return static_cast<std::uint64_t>(data_.capacity()) * sizeof(T);
  }

  /// First charge after construction. On a trap, charged_ stays 0 and the
  /// slow path already rolled the accounting back; the unwind frees data_.
  void charge() {
    const std::uint64_t bytes = capacity_bytes();
    if (bytes == 0) return;
    rt::charge_bytes(bytes);
    charged_ = bytes;
  }

  /// Re-sync the charge after a capacity change. A trap on growth leaves
  /// charged_ at the old (still-released-by-the-destructor) tally.
  void recharge() {
    const std::uint64_t bytes = capacity_bytes();
    if (bytes > charged_) {
      rt::charge_bytes(bytes - charged_);
      charged_ = bytes;
    } else if (bytes < charged_) {
      rt::release_bytes(charged_ - bytes);
      charged_ = bytes;
    }
  }

  /// Sized construction: an arena hit reuses a pooled buffer whose
  /// governor charge travels with it (capacity >= n, so assign cannot
  /// reallocate); a miss takes the original charged-allocation path.
  void init_sized(std::size_t n, T fill) {
    std::uint64_t banked = 0;
    if (arena::try_acquire(n, data_, banked)) {
      charged_ = banked;
      recycled_ = true;
      data_.assign(n, fill);
      return;
    }
    data_.assign(n, fill);
    charge();
  }

  void init_copy(const std::vector<T>& src) {
    std::uint64_t banked = 0;
    if (arena::try_acquire(src.size(), data_, banked)) {
      charged_ = banked;
      recycled_ = true;
      data_.assign(src.begin(), src.end());
      return;
    }
    data_ = src;
    charge();
  }

  /// Destruction / overwrite: donate the buffer (and its outstanding
  /// charge) to the active arena; otherwise release the charge normally.
  void release_storage() noexcept {
    if (charged_ != 0 && arena::try_donate(std::move(data_), charged_)) {
      charged_ = 0;
      return;
    }
    rt::release_bytes(charged_);
    charged_ = 0;
  }

  std::vector<T> data_;
  std::uint64_t charged_ = 0;
  bool recycled_ = false;
};

using IntVec = Vec<Int>;
using RealVec = Vec<Real>;
using BoolVec = Vec<Bool>;

template <typename T>
std::ostream& operator<<(std::ostream& os, const Vec<T>& v) {
  os << '[';
  for (Size i = 0; i < v.size(); ++i) {
    if (i > 0) os << ',';
    if constexpr (std::is_same_v<T, Bool>) {
      os << (v[i] ? 'T' : 'F');
    } else {
      os << v[i];
    }
  }
  return os << ']';
}

/// Require two vectors to be elementwise conformable (equal length).
template <typename T, typename U>
void require_same_length(const Vec<T>& a, const Vec<U>& b, const char* op) {
  PROTEUS_REQUIRE(VectorError, a.size() == b.size(),
                  std::string(op) + ": operand lengths differ (" +
                      std::to_string(a.size()) + " vs " +
                      std::to_string(b.size()) + ")");
}

}  // namespace proteus::vl
