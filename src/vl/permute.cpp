#include "vl/permute.hpp"

#include <atomic>

#include "vl/kernel.hpp"

namespace proteus::vl {

namespace detail {

template <typename T>
Vec<T> gather_impl(const Vec<T>& values, const IntVec& indices) {
  const Size n = indices.size();
  const Size m = values.size();
  Vec<T> out(n);
  const T* vp = values.data();
  const Int* ip = indices.data();
  T* op = out.data();
  parallel_for(n, [&](Size i) {
    const Int j = ip[i];
    PROTEUS_REQUIRE(EvalError, j >= 0 && j < m,
                    "gather index " + std::to_string(j) +
                        " out of range for vector of length " +
                        std::to_string(m));
    op[i] = vp[j];
  });
  stats().record(n);
  return out;
}

template <typename T>
Vec<T> permute_impl(const Vec<T>& values, const IntVec& positions) {
  require_same_length(values, positions, "permute");
  const Size n = values.size();
  Vec<T> out(n);
  Vec<Bool> written(n, Bool{0});
  const T* vp = values.data();
  const Int* pp = positions.data();
  T* op = out.data();
  Bool* wp = written.data();
  parallel_for(n, [&](Size i) {
    const Int j = pp[i];
    PROTEUS_REQUIRE(VectorError, j >= 0 && j < n,
                    "permute position out of range");
    op[j] = vp[i];
    wp[j] = 1;  // each slot is written once iff positions is a permutation
  });
  for (Size i = 0; i < n; ++i) {
    PROTEUS_REQUIRE(VectorError, wp[i] != 0,
                    "permute positions are not a permutation");
  }
  stats().record(n);
  return out;
}

template <typename T>
Vec<T> scatter_impl(const Vec<T>& into, const IntVec& positions,
                    const Vec<T>& values) {
  require_same_length(positions, values, "scatter");
  const Size n = values.size();
  const Size m = into.size();
  Vec<T> out = into;
  Vec<Bool> written(m, Bool{0});
  const T* vp = values.data();
  const Int* pp = positions.data();
  T* op = out.data();
  Bool* wp = written.data();
  for (Size i = 0; i < n; ++i) {  // serial: duplicate detection is ordered
    const Int j = pp[i];
    PROTEUS_REQUIRE(EvalError, j >= 0 && j < m,
                    "scatter position out of range");
    PROTEUS_REQUIRE(VectorError, wp[j] == 0,
                    "scatter writes position " + std::to_string(j) + " twice");
    op[j] = vp[i];
    wp[j] = 1;
  }
  stats().record(n);
  return out;
}

template <typename T>
Vec<T> seg_gather_impl(const Vec<T>& values, const IntVec& src_offsets,
                       const IntVec& src_lengths, const IntVec& seg_of,
                       const IntVec& local_index) {
  require_same_length(seg_of, local_index, "seg_gather");
  require_same_length(src_offsets, src_lengths, "seg_gather");
  const Size n = seg_of.size();
  const Size nseg = src_offsets.size();
  Vec<T> out(n);
  const T* vp = values.data();
  const Int* op_ = src_offsets.data();
  const Int* lp = src_lengths.data();
  const Int* sp = seg_of.data();
  const Int* xp = local_index.data();
  T* rp = out.data();
  parallel_for(n, [&](Size i) {
    const Int s = sp[i];
    PROTEUS_REQUIRE(EvalError, s >= 0 && s < nseg,
                    "seg_gather segment id out of range");
    const Int x = xp[i];
    PROTEUS_REQUIRE(EvalError, x >= 0 && x < lp[s],
                    "seq_index: index " + std::to_string(x + 1) +
                        " out of range for sequence of length " +
                        std::to_string(lp[s]));
    rp[i] = vp[op_[s] + x];
  });
  stats().record(n);
  return out;
}

template IntVec gather_impl<Int>(const IntVec&, const IntVec&);
template RealVec gather_impl<Real>(const RealVec&, const IntVec&);
template BoolVec gather_impl<Bool>(const BoolVec&, const IntVec&);
template IntVec permute_impl<Int>(const IntVec&, const IntVec&);
template RealVec permute_impl<Real>(const RealVec&, const IntVec&);
template BoolVec permute_impl<Bool>(const BoolVec&, const IntVec&);
template IntVec scatter_impl<Int>(const IntVec&, const IntVec&, const IntVec&);
template RealVec scatter_impl<Real>(const RealVec&, const IntVec&,
                                    const RealVec&);
template BoolVec scatter_impl<Bool>(const BoolVec&, const IntVec&,
                                    const BoolVec&);
template IntVec seg_gather_impl<Int>(const IntVec&, const IntVec&,
                                     const IntVec&, const IntVec&,
                                     const IntVec&);
template RealVec seg_gather_impl<Real>(const RealVec&, const IntVec&,
                                       const IntVec&, const IntVec&,
                                       const IntVec&);
template BoolVec seg_gather_impl<Bool>(const BoolVec&, const IntVec&,
                                       const IntVec&, const IntVec&,
                                       const IntVec&);

}  // namespace detail

template <typename T>
Vec<T> reverse(const Vec<T>& values) {
  const Size n = values.size();
  Vec<T> out(n);
  const T* vp = values.data();
  T* op = out.data();
  detail::parallel_for(n, [&](Size i) { op[i] = vp[n - 1 - i]; });
  stats().record(n);
  return out;
}

template <typename T>
Vec<T> rotate(const Vec<T>& values, Int k) {
  const Size n = values.size();
  Vec<T> out(n);
  if (n == 0) return out;
  const T* vp = values.data();
  T* op = out.data();
  const Int shift = ((k % n) + n) % n;
  detail::parallel_for(n, [&](Size i) { op[i] = vp[(i + shift) % n]; });
  stats().record(n);
  return out;
}

template IntVec reverse<Int>(const IntVec&);
template RealVec reverse<Real>(const RealVec&);
template BoolVec reverse<Bool>(const BoolVec&);
template IntVec rotate<Int>(const IntVec&, Int);
template RealVec rotate<Real>(const RealVec&, Int);
template BoolVec rotate<Bool>(const BoolVec&, Int);

}  // namespace proteus::vl
