// kernel.hpp — loop-dispatch helpers shared by the vl kernels.
//
// Every data-parallel kernel in the library funnels through parallel_for /
// parallel_reduce so the Serial/OpenMP policy decision lives in exactly one
// place. Bodies must be data-race free across iterations (each iteration
// owns its output slot); kernels with cross-iteration dependences (scans)
// implement their own blocked two-pass algorithms on top of these.
#pragma once

#include <utility>

#include "vl/backend.hpp"
#include "vl/vec.hpp"

namespace proteus::vl::detail {

/// True when the current policy wants a threaded loop of `n` iterations.
[[nodiscard]] inline bool use_threads(Size n) noexcept {
  return backend() == Backend::kOpenMP && n >= kParallelGrain &&
         openmp_available();
}

/// Run body(i) for i in [0, n), partitioned across threads when the OpenMP
/// backend is active and the trip count is worth it.
template <typename F>
void parallel_for(Size n, F&& body) {
#ifdef _OPENMP
  if (use_threads(n)) {
#pragma omp parallel for schedule(static)
    for (Size i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
#endif
  for (Size i = 0; i < n; ++i) {
    body(i);
  }
}

/// Tree-reduce acc = combine(acc, leaf(i)) over i in [0, n) starting from
/// `init`. `combine` must be associative and commutative.
template <typename T, typename Leaf, typename Combine>
T parallel_reduce(Size n, T init, Leaf&& leaf, Combine&& combine) {
#ifdef _OPENMP
  if (use_threads(n)) {
    T acc = init;
#pragma omp parallel
    {
      T local = init;
#pragma omp for schedule(static) nowait
      for (Size i = 0; i < n; ++i) {
        local = combine(local, leaf(i));
      }
#pragma omp critical
      acc = combine(acc, local);
    }
    return acc;
  }
#endif
  T acc = init;
  for (Size i = 0; i < n; ++i) {
    acc = combine(acc, leaf(i));
  }
  return acc;
}

}  // namespace proteus::vl::detail
