#include "vl/backend.hpp"

#include <cstdlib>
#include <string_view>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace proteus::vl {

namespace {

Backend initial_backend() noexcept {
  const char* env = std::getenv("PROTEUS_BACKEND");
  if (env != nullptr && std::string_view(env) == "openmp" &&
      openmp_available()) {
    return Backend::kOpenMP;
  }
  return Backend::kSerial;
}

Backend g_backend = initial_backend();
VectorStats g_stats;

}  // namespace

Backend backend() noexcept { return g_backend; }

Backend set_backend(Backend b) noexcept {
  Backend prev = g_backend;
  if (b == Backend::kOpenMP && !openmp_available()) {
    b = Backend::kSerial;
  }
  g_backend = b;
  return prev;
}

bool openmp_available() noexcept {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

int backend_threads() noexcept {
#ifdef _OPENMP
  return backend() == Backend::kOpenMP ? omp_get_max_threads() : 1;
#else
  return 1;
#endif
}

VectorStats& stats() noexcept { return g_stats; }

void reset_stats() noexcept { g_stats = VectorStats{}; }

}  // namespace proteus::vl
