#include "vl/backend.hpp"

#include <cstdlib>
#include <string_view>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace proteus::vl {

namespace {

Backend initial_backend() noexcept {
  const char* env = std::getenv("PROTEUS_BACKEND");
  if (env != nullptr && std::string_view(env) == "openmp" &&
      openmp_available()) {
    return Backend::kOpenMP;
  }
  return Backend::kSerial;
}

Backend g_backend = initial_backend();

}  // namespace

Backend backend() noexcept { return g_backend; }

Backend set_backend(Backend b) noexcept {
  Backend prev = g_backend;
  if (b == Backend::kOpenMP && !openmp_available()) {
    b = Backend::kSerial;
  }
  g_backend = b;
  return prev;
}

bool openmp_available() noexcept {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

int backend_threads() noexcept {
#ifdef _OPENMP
  return backend() == Backend::kOpenMP ? omp_get_max_threads() : 1;
#else
  return 1;
#endif
}

VectorStats& stats() noexcept {
  // Per-thread: the kernels record their costs on the thread driving the
  // evaluation (outside their parallel regions), so concurrent serving
  // workers each observe exactly their own request's work (src/serve/).
  thread_local VectorStats t_stats;
  return t_stats;
}

void reset_stats() noexcept { stats() = VectorStats{}; }

}  // namespace proteus::vl
