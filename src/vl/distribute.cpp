#include "vl/distribute.hpp"

#include "vl/kernel.hpp"
#include "vl/segdesc.hpp"

namespace proteus::vl {

namespace detail {

template <typename T>
Vec<T> dist_impl(T value, Size n) {
  PROTEUS_REQUIRE(VectorError, n >= 0, "dist: negative count");
  Vec<T> out(n);
  T* op = out.data();
  parallel_for(n, [&](Size i) { op[i] = value; });
  stats().record(n);
  stats().record_alloc(out.recycled());
  return out;
}

template <typename T>
Vec<T> seg_dist_impl(const Vec<T>& values, const IntVec& counts) {
  require_same_length(values, counts, "seg_dist");
  const Size total = lengths_total(counts);
  Vec<T> out(total);
  IntVec offsets = lengths_to_offsets(counts);
  const T* vp = values.data();
  const Int* cp = counts.data();
  const Int* op_ = offsets.data();
  T* rp = out.data();
  parallel_for(values.size(), [&](Size s) {
    for (Int k = 0; k < cp[s]; ++k) rp[op_[s] + k] = vp[s];
  });
  stats().record(total);
  return out;
}

template IntVec dist_impl<Int>(Int, Size);
template RealVec dist_impl<Real>(Real, Size);
template BoolVec dist_impl<Bool>(Bool, Size);
template IntVec seg_dist_impl<Int>(const IntVec&, const IntVec&);
template RealVec seg_dist_impl<Real>(const RealVec&, const IntVec&);
template BoolVec seg_dist_impl<Bool>(const BoolVec&, const IntVec&);

}  // namespace detail

IntVec iota(Size n, Int start) {
  PROTEUS_REQUIRE(VectorError, n >= 0, "iota: negative count");
  IntVec out(n);
  Int* op = out.data();
  detail::parallel_for(n, [&](Size i) { op[i] = start + i; });
  stats().record(n);
  return out;
}

IntVec iota1(Int n) { return iota(n < 0 ? 0 : n, 1); }

IntVec seg_iota1(const IntVec& counts) {
  // Clamp negatives to empty segments: [1..n] is empty when n < 1.
  IntVec clamped(counts.size());
  const Int* cp = counts.data();
  Int* kp = clamped.data();
  detail::parallel_for(counts.size(),
                       [&](Size i) { kp[i] = cp[i] < 0 ? 0 : cp[i]; });
  stats().record(counts.size());
  return segment_ranks(clamped);
}

IntVec range(Int lo, Int hi, Int step) {
  PROTEUS_REQUIRE(VectorError, step != 0, "range: zero step");
  Size n = 0;
  if (step > 0 && hi >= lo) {
    n = (hi - lo) / step + 1;
  } else if (step < 0 && hi <= lo) {
    n = (lo - hi) / (-step) + 1;
  }
  IntVec out(n);
  Int* op = out.data();
  detail::parallel_for(n, [&](Size i) { op[i] = lo + i * step; });
  stats().record(n);
  return out;
}

}  // namespace proteus::vl
