// permute.hpp — data-movement primitives: permute, gather, scatter, and
// their segmented forms.
//
// gather implements seq_index^1 with a *fixed* (depth-0) source — the
// Section 4.5 optimization — while seg_gather implements seq_index^1 when
// the source itself varies per element (one source subsequence per
// segment). Indices follow the language's 1-origin convention at the call
// sites in exec/; the vl layer is 0-origin like CVL.
#pragma once

#include "vl/vec.hpp"

namespace proteus::vl {

namespace detail {

template <typename T>
Vec<T> gather_impl(const Vec<T>& values, const IntVec& indices);

template <typename T>
Vec<T> permute_impl(const Vec<T>& values, const IntVec& positions);

template <typename T>
Vec<T> scatter_impl(const Vec<T>& into, const IntVec& positions,
                    const Vec<T>& values);

template <typename T>
Vec<T> seg_gather_impl(const Vec<T>& values, const IntVec& src_offsets,
                       const IntVec& src_lengths, const IntVec& seg_of,
                       const IntVec& local_index);

}  // namespace detail

/// out[i] = values[indices[i]]   (0-origin; a.k.a. back-permute)
template <typename T>
Vec<T> gather(const Vec<T>& values, const IntVec& indices) {
  return detail::gather_impl(values, indices);
}

/// out[positions[i]] = values[i]; `positions` must be a permutation of
/// 0..#values-1 (checked: every output slot written exactly once).
template <typename T>
Vec<T> permute(const Vec<T>& values, const IntVec& positions) {
  return detail::permute_impl(values, positions);
}

/// Copy of `into` with out[positions[i]] = values[i]. Duplicate positions
/// are an error (the vector model has no combining scatter in Table 2).
template <typename T>
Vec<T> scatter(const Vec<T>& into, const IntVec& positions,
               const Vec<T>& values) {
  return detail::scatter_impl(into, positions, values);
}

/// Segmented gather: element i reads values[src_offsets[seg_of[i]] +
/// local_index[i]] where local_index is 0-origin within segment
/// seg_of[i] of the source. Bounds are checked against src_lengths.
template <typename T>
Vec<T> seg_gather(const Vec<T>& values, const IntVec& src_offsets,
                  const IntVec& src_lengths, const IntVec& seg_of,
                  const IntVec& local_index) {
  return detail::seg_gather_impl(values, src_offsets, src_lengths, seg_of,
                                 local_index);
}

/// reverse of a vector (a permute with positions n-1-i).
template <typename T>
Vec<T> reverse(const Vec<T>& values);

/// rotate left by k (k may be any integer; result[i] = values[(i+k) mod n]).
template <typename T>
Vec<T> rotate(const Vec<T>& values, Int k);

}  // namespace proteus::vl
