// xform.hpp — umbrella header for the transformation engine (Sections 3
// and 4 of the paper: rules R1, R2a–R2f, T1).
#pragma once

#include "xform/build.hpp"
#include "xform/canon.hpp"
#include "xform/flatten.hpp"
#include "xform/freevars.hpp"
#include "xform/optimize.hpp"
#include "xform/pipeline.hpp"
#include "xform/translate.hpp"
#include "xform/verify.hpp"
