// flatten.hpp — iterator elimination: the syntax-directed transformation
// tau(e, j) of Section 3.2 (rules R2a–R2f) together with the synthesis of
// the parallel extensions f^1 of user functions (the R0 step shown in
// Section 5).
//
// Input: a type-checked, canonicalized program (every iterator of the form
// [i <- range1(e) : body], no filters). Output: an equivalent program with
// no Iterator nodes, where data-parallelism is expressed through
// depth-annotated calls (PrimCall/FunCall/IndirectCall/SeqExpr/TupleExpr/
// TupleGet with depth >= 1) plus the representation primitives
// empty_frame/any_true of rule R2d. The subsequent translate pass (T1)
// reduces every depth >= 2 occurrence to depth 1.
//
// Key invariants maintained by the pass (see DESIGN.md §5):
//   * At transformation depth j, every variable bound at depth >= 1
//     ("frame variables") holds a depth-j frame; variables bound at depth
//     0 (parameters, outer lets) are depth-0 values used via broadcast.
//   * Subexpressions with no free frame variables are transformed at depth
//     0 and broadcast — this is the paper's "iterators enclosing a
//     constant or a free variable may be replaced directly" rule and the
//     basis of the §4.5 no-replication optimization.
//   * A "witness" frame variable conformable with the current depth-j
//     frame is always in scope, so depth-0 values can be replicated to
//     depth j with dist/extract/insert when a frame is required (user
//     function arguments; Section 3's uniform depth-0 -> depth-d
//     conversion).
#pragma once

#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "xform/build.hpp"

namespace proteus::xform {

struct FlattenOptions {
  /// Section 4.5 optimization: when true (default), invariant sequence
  /// arguments of primitives stay depth-0 and the executor applies them
  /// via shared-source kernels (e.g. seq_index^1 as a gather from one
  /// shared sequence). When false, every invariant sequence argument is
  /// explicitly replicated to the frame depth — the "waste of time and
  /// space" the paper warns about; kept for the ablation bench.
  bool broadcast_invariant_seq_args = true;
};

struct FlattenedProgram {
  /// All original functions (iterator-free bodies) plus every generated
  /// parallel extension f^1 (marked with extension_of / extension_depth).
  lang::Program program;
  /// How many times each R2 rule fired ({R2a} ... {R2e}, {R0}, hoist).
  /// When an obs tracer is installed, each firing is additionally
  /// recorded as a "rule" instant event with depth and source snippet —
  /// the KIDS-style derivation annotations the paper shows in Section 5.
  RuleCounts rule_counts;
};

/// Flattens every function of a canonical checked program.
[[nodiscard]] FlattenedProgram flatten(const lang::Program& canonical,
                                       NameGen& names,
                                       const FlattenOptions& options = {});

/// Flattens a standalone canonical expression against `canonical`
/// (functions it needs are flattened into `out->program`). Returns the
/// iterator-free expression.
[[nodiscard]] lang::ExprPtr flatten_expression(
    const lang::Program& canonical, const lang::ExprPtr& expr, NameGen& names,
    FlattenedProgram* out, const FlattenOptions& options = {});

}  // namespace proteus::xform
