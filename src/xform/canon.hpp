// canon.hpp — iterator canonical form (rule R1 of Section 3.1, plus the
// desugaring of the filtered iterator defined in Section 2).
//
// After this pass, every iterator in the program
//   * has no filter clause:   [x <- d | b : e]  becomes
//         let _d = d in
//         let _m = [x <- _d : b] in
//         [x <- restrict(_d, _m) : e]
//   * has a domain of the form range1(e) (i.e. [1 .. e]):
//         [x <- d : e]  becomes
//         let _v = d in
//         [_i <- range1(#_v) : let x = _v[_i] in e]
//     (iterators whose domain is already [1..e] are left alone, with their
//     own variable serving as the index).
//
// The pass expects a type-checked program and preserves type annotations.
#pragma once

#include "lang/ast.hpp"
#include "xform/build.hpp"

namespace proteus::xform {

/// Canonicalizes every iterator in `e`. When `rules` is non-null, R1
/// firings ("R1" domain rewrites, "R1f" filter desugarings) are tallied
/// into it; each firing is also emitted as a "rule" instant event on the
/// installed obs tracer.
[[nodiscard]] lang::ExprPtr canonicalize(const lang::ExprPtr& e,
                                         NameGen& names,
                                         RuleCounts* rules = nullptr);

/// Canonicalizes every function body of a checked program.
[[nodiscard]] lang::Program canonicalize(const lang::Program& program,
                                         NameGen& names,
                                         RuleCounts* rules = nullptr);

}  // namespace proteus::xform
