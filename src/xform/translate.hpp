// translate.hpp — the translation rule T1 of Section 4.3 / Figure 3.
//
// A depth-d parallel extension (d >= 2) of any function f is realized with
// the depth-1 extension alone:
//
//     f^d(e1, ..., en)  =  insert(f^1(extract(e1, d-1), ..., d-1 applied
//                          to every frame argument), e1, d-1)
//
// extract flattens the d-1 outer nesting levels of each frame argument
// (broadcast arguments pass through untouched), f^1 runs on the flat
// depth-1 frames, and insert re-attaches the original frame's descriptors
// to the result. After this pass every call node has depth <= 1, calls to
// user extensions are rewritten to their generated `f^1` definitions, and
// the executor needs native kernels only for the depth-1 extensions of the
// primitives — exactly the claim of Section 4.3.
#pragma once

#include "lang/ast.hpp"
#include "xform/build.hpp"

namespace proteus::xform {

/// Applies T1 to one expression.
[[nodiscard]] lang::ExprPtr translate(const lang::ExprPtr& e, NameGen& names);

/// Applies T1 to every function body.
[[nodiscard]] lang::Program translate(const lang::Program& flattened,
                                      NameGen& names);

}  // namespace proteus::xform
