#include "xform/flatten.hpp"

#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "vl/check.hpp"
#include "lang/printer.hpp"
#include "obs/tracer.hpp"
#include "xform/freevars.hpp"

namespace proteus::xform {

using namespace lang;

namespace {

enum class VarClass : std::uint8_t {
  kBroadcast,  // bound at depth 0 (parameters, outer lets): depth-0 value
  kFrame,      // bound at depth >= 1: holds a depth-j frame at depth j
};

struct VarInfo {
  VarClass cls = VarClass::kBroadcast;
  TypePtr type;  // current (frame) type
};

/// Lexical transformation context (copied down the tree).
struct Ctx {
  std::map<std::string, VarInfo> vars;
  std::string witness;   // a variable holding a conformable depth-j frame
  TypePtr witness_type;  // its type (only meaningful when depth >= 1)
};

struct Res {
  ExprPtr expr;
  bool frame = false;  // true: depth-j frame; false: depth-0 broadcast value
};

TypePtr strip_seq(const TypePtr& t, int k) {
  TypePtr cur = t;
  for (int i = 0; i < k; ++i) {
    PROTEUS_REQUIRE(TransformError, cur->is_seq(),
                    "internal: stripping a non-sequence type");
    cur = cur->elem();
  }
  return cur;
}

class Flattener {
 public:
  Flattener(const Program& input, NameGen& names,
            const FlattenOptions& options)
      : input_(input), names_(names), opts_(options) {}

  FlattenedProgram run() {
    for (const FunDef& f : input_.functions) {
      transform_function(f);
    }
    scan_function_values();
    drain_worklist();
    return {std::move(output_), std::move(rules_)};
  }

  ExprPtr run_expression(const ExprPtr& expr) {
    for (const FunDef& f : input_.functions) {
      transform_function(f);
    }
    Ctx ctx;
    Res r = tau(expr, 0, ctx);
    scan_function_values();
    scan_expr_function_values(expr);
    drain_worklist();
    return r.expr;
  }

  FlattenedProgram take_program() {
    return {std::move(output_), std::move(rules_)};
  }

 private:
  // --- program-level driving --------------------------------------------------

  void transform_function(const FunDef& f) {
    Ctx ctx;
    for (const Param& p : f.params) {
      ctx.vars[p.name] = VarInfo{VarClass::kBroadcast, p.type};
    }
    Res r = tau(f.body, 0, ctx);
    FunDef out = f;
    out.body = r.expr;
    output_.functions.push_back(std::move(out));
  }

  /// Functions whose *value* may be applied through an IndirectCall at
  /// depth 1 need their extensions generated ("the number of parallel
  /// extensions ... is a static property of the program"). That covers
  /// (a) every function referenced as a value in the program, and (b) —
  /// because callers of the library can pass any function value for a
  /// function-typed parameter — every function whose signature matches
  /// some function-typed parameter type.
  void scan_function_values() {
    for (const FunDef& f : input_.functions) {
      scan_expr_function_values(f.body);
    }
    std::vector<TypePtr> fun_param_types;
    for (const FunDef& f : input_.functions) {
      for (const Param& p : f.params) {
        if (p.type->is_fun()) fun_param_types.push_back(p.type);
      }
    }
    for (const FunDef& f : input_.functions) {
      bool extensible = false;
      for (const Param& p : f.params) {
        if (!p.type->is_fun()) extensible = true;
      }
      if (!extensible || f.params.empty()) continue;
      std::vector<TypePtr> params;
      for (const Param& p : f.params) params.push_back(p.type);
      TypePtr sig = Type::fun(std::move(params), f.result);
      for (const TypePtr& t : fun_param_types) {
        if (equal(sig, t)) {
          request_extension(f.name);
          break;
        }
      }
    }
  }

  void scan_expr_function_values(const ExprPtr& e) {
    if (e == nullptr) return;
    if (const auto* var = as<VarRef>(e)) {
      if (var->is_function) request_extension(var->name);
      return;
    }
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, Let>) {
            scan_expr_function_values(node.init);
            scan_expr_function_values(node.body);
          } else if constexpr (std::is_same_v<T, If>) {
            scan_expr_function_values(node.cond);
            scan_expr_function_values(node.then_expr);
            scan_expr_function_values(node.else_expr);
          } else if constexpr (std::is_same_v<T, Iterator>) {
            scan_expr_function_values(node.domain);
            scan_expr_function_values(node.filter);
            scan_expr_function_values(node.body);
          } else if constexpr (std::is_same_v<T, PrimCall> ||
                               std::is_same_v<T, FunCall>) {
            for (const ExprPtr& a : node.args) scan_expr_function_values(a);
          } else if constexpr (std::is_same_v<T, IndirectCall>) {
            scan_expr_function_values(node.fn);
            for (const ExprPtr& a : node.args) scan_expr_function_values(a);
          } else if constexpr (std::is_same_v<T, TupleExpr> ||
                               std::is_same_v<T, SeqExpr>) {
            for (const ExprPtr& a : node.elems) scan_expr_function_values(a);
          } else if constexpr (std::is_same_v<T, TupleGet>) {
            scan_expr_function_values(node.tuple);
          }
        },
        e->node);
  }

  void request_extension(const std::string& base) {
    if (generated_.insert(base).second) worklist_.push_back(base);
  }

  void drain_worklist() {
    while (!worklist_.empty()) {
      std::string base = std::move(worklist_.back());
      worklist_.pop_back();
      generate_extension(base);
    }
  }

  /// R0 (Section 5): f^1(V1..Vn) is derived by enclosing f's body in one
  /// canonical iterator that enumerates the argument frames, then
  /// flattening the result.
  void generate_extension(const std::string& base) {
    const FunDef* f = input_.find(base);
    PROTEUS_REQUIRE(TransformError, f != nullptr,
                    "extension requested for unknown function '" + base + "'");

    std::vector<Param> ext_params;
    ext_params.reserve(f->params.size());
    int first_frame = -1;
    for (std::size_t k = 0; k < f->params.size(); ++k) {
      const Param& p = f->params[k];
      Param q;
      q.name = names_.fresh(("V" + p.name).c_str());
      q.type = p.type->is_fun() ? p.type : Type::seq(p.type);
      if (!p.type->is_fun() && first_frame < 0) {
        first_frame = static_cast<int>(k);
      }
      ext_params.push_back(std::move(q));
    }
    PROTEUS_REQUIRE(TransformError, first_frame >= 0,
                    "cannot extend '" + base +
                        "': every parameter is function-typed");

    // [ _i <- range1(#V_first) :
    //     let p1 = V1[_i] in ... let pn = Vn[_i] in body ]
    std::string ivar = names_.fresh("i");
    const Param& vf = ext_params[static_cast<std::size_t>(first_frame)];
    ExprPtr domain = nb::prim(
        Prim::kRange1,
        {nb::prim(Prim::kLength, {nb::var(vf.name, vf.type)})});

    ExprPtr inner = f->body;
    for (std::size_t k = f->params.size(); k-- > 0;) {
      const Param& orig = f->params[k];
      const Param& ext = ext_params[k];
      ExprPtr bound =
          orig.type->is_fun()
              ? nb::var(ext.name, ext.type)
              : nb::prim(Prim::kSeqIndex, {nb::var(ext.name, ext.type),
                                           nb::var(ivar, Type::int_())});
      inner = nb::let(orig.name, std::move(bound), inner);
    }
    ExprPtr iter = nb::iterator(ivar, std::move(domain), std::move(inner));

    Ctx ctx;
    for (const Param& p : ext_params) {
      ctx.vars[p.name] = VarInfo{VarClass::kBroadcast, p.type};
    }
    Res r = tau(iter, 0, ctx);

    FunDef out;
    out.name = extension_name(base, 1);
    out.params = std::move(ext_params);
    out.result = Type::seq(f->result);
    out.body = r.expr;
    out.extension_of = base;
    out.extension_depth = 1;
    output_.functions.push_back(std::move(out));
  }

  // --- the transformation tau(e, j) -------------------------------------------

  /// Tallies a rule firing and, when a tracer is installed, records it
  /// as a "rule" instant event carrying the depth and a source snippet
  /// (the KIDS-style derivation annotation of Section 5). The textual
  /// derivation and the Chrome trace both render from these events.
  void log_rule(const char* rule, const ExprPtr& e, int j) {
    rules_[rule] += 1;
    obs::Tracer* t = obs::tracer();
    if (t == nullptr) return;
    std::string text = to_text(e);
    if (text.size() > 64) text = text.substr(0, 61) + "...";
    t->instant("rule", rule, std::move(text),
               {{"depth", static_cast<std::uint64_t>(j)}});
  }

  Res tau(const ExprPtr& e, int j, const Ctx& ctx) {
    // Invariant-hoisting: a subexpression with no free frame variables is
    // uniform across the depth-j frame; transform it once at depth 0.
    if (j >= 1 && !has_free_frame_var(e, ctx)) {
      if (as<IntLit>(e) == nullptr && as<VarRef>(e) == nullptr &&
          as<RealLit>(e) == nullptr && as<BoolLit>(e) == nullptr) {
        log_rule("hoist", e, j);
      }
      Ctx base;
      for (const auto& [name, info] : ctx.vars) {
        if (info.cls == VarClass::kBroadcast) base.vars.emplace(name, info);
      }
      Res r = tau(e, 0, base);
      return {r.expr, false};
    }
    return std::visit(
        [&](const auto& node) { return tau_node(node, e, j, ctx); }, e->node);
  }

  bool has_free_frame_var(const ExprPtr& e, const Ctx& ctx) {
    const std::set<std::string>& free = cached_free_vars(e);
    for (const std::string& name : free) {
      auto it = ctx.vars.find(name);
      if (it != ctx.vars.end() && it->second.cls == VarClass::kFrame) {
        return true;
      }
    }
    return false;
  }

  const std::set<std::string>& cached_free_vars(const ExprPtr& e) {
    // Keyed on the shared_ptr (not the raw address): holding the node
    // alive prevents a recycled allocation from aliasing a stale entry.
    auto it = free_cache_.find(e);
    if (it != free_cache_.end()) return it->second;
    return free_cache_.emplace(e, free_vars(e)).first->second;
  }

  // R2b: constants are unchanged (depth-0, broadcast).
  Res tau_node(const IntLit&, const ExprPtr& e, int, const Ctx&) {
    return {e, false};
  }
  Res tau_node(const RealLit&, const ExprPtr& e, int, const Ctx&) {
    return {e, false};
  }
  Res tau_node(const BoolLit&, const ExprPtr& e, int, const Ctx&) {
    return {e, false};
  }

  // R2a: identifiers translate to themselves; frame variables carry their
  // frame type.
  Res tau_node(const VarRef& n, const ExprPtr& e, int j, const Ctx& ctx) {
    log_rule("R2a", e, j);
    auto it = ctx.vars.find(n.name);
    if (it == ctx.vars.end()) {
      // Top-level function name used as a value (R2f: functions are fully
      // parameterized, hence independent of surrounding iterators).
      PROTEUS_REQUIRE(TransformError, n.is_function,
                      "unbound variable '" + n.name + "' during flattening");
      return {e, false};
    }
    const VarInfo& info = it->second;
    ExprPtr var = nb::var(n.name, info.type);
    return {var, info.cls == VarClass::kFrame};
  }

  // R2e: let.
  Res tau_node(const Let& n, const ExprPtr& e0, int j, const Ctx& ctx) {
    log_rule("R2e", e0, j);
    Res init = tau(n.init, j, ctx);
    Ctx inner = ctx;
    inner.vars[n.var] =
        VarInfo{init.frame ? VarClass::kFrame : VarClass::kBroadcast,
                init.expr->type};
    Res body = tau(n.body, j, inner);
    return {nb::let(n.var, init.expr, body.expr), body.frame};
  }

  // R2d: conditional.
  Res tau_node(const If& n, const ExprPtr&, int j, const Ctx& ctx) {
    Res cond = tau(n.cond, j, ctx);
    if (!cond.frame) {
      // Uniform condition: stays an ordinary conditional.
      Res t = tau(n.then_expr, j, ctx);
      Res f = tau(n.else_expr, j, ctx);
      const bool frame = t.frame || f.frame;
      if (frame && !t.frame) t = Res{lift(t.expr, j, ctx), true};
      if (frame && !f.frame) f = Res{lift(f.expr, j, ctx), true};
      return {nb::if_(cond.expr, t.expr, f.expr), frame};
    }

    PROTEUS_REQUIRE(TransformError, j >= 1,
                    "internal: frame-valued condition at depth 0");
    log_rule("R2d", n.cond, j);
    const TypePtr mask_type = cond.expr->type;  // Seq^j(bool)
    std::string mname = names_.fresh("m");
    std::string nmname = names_.fresh("nm");
    ExprPtr mvar = nb::var(mname, mask_type);
    ExprPtr nmvar = nb::var(nmname, mask_type);
    ExprPtr not_m = nb::prim_d(Prim::kNot, j, {mvar}, {1}, mask_type);

    ExprPtr r2 = guarded_branch(n.then_expr, mvar, j, ctx);
    ExprPtr r3 = guarded_branch(n.else_expr, nmvar, j, ctx);

    std::string r2name = names_.fresh("R2");
    std::string r3name = names_.fresh("R3");
    ExprPtr r2var = nb::var(r2name, r2->type);
    ExprPtr r3var = nb::var(r3name, r3->type);
    ExprPtr combined = combine_ext(mvar, r2var, r3var, j);

    ExprPtr result =
        nb::let(mname, cond.expr,
                nb::let(nmname, not_m,
                        nb::let(r2name, r2, nb::let(r3name, r3, combined))));
    return {result, true};
  }

  /// One guarded branch of rule R2d: evaluate the branch with every frame
  /// variable restricted by `mask`, unless the mask has no true leaf, in
  /// which case yield the empty frame.
  ExprPtr guarded_branch(const ExprPtr& branch, const ExprPtr& mask_var,
                         int j, const Ctx& ctx) {
    const TypePtr branch_frame_type =
        Type::seq_n(branch->type, j);  // Seq^j(T)

    // Restricted environment: rebind occurring frame variables, and bind a
    // fresh witness with the restricted shape (restrict(M, M), which the
    // paper also uses for the guard).
    Ctx inner = ctx;
    std::string wname = names_.fresh("w");
    ExprPtr witness_init = restrict_ext(mask_var, mask_var, j);
    inner.witness = wname;
    inner.witness_type = witness_init->type;

    std::vector<std::pair<std::string, ExprPtr>> rebinds;
    rebinds.emplace_back(wname, witness_init);
    inner.vars[wname] = VarInfo{VarClass::kFrame, witness_init->type};
    for (const std::string& name : cached_free_vars(branch)) {
      auto it = ctx.vars.find(name);
      if (it == ctx.vars.end() || it->second.cls != VarClass::kFrame) continue;
      ExprPtr vvar = nb::var(name, it->second.type);
      rebinds.emplace_back(name, restrict_ext(vvar, mask_var, j));
    }

    Res body = tau(branch, j, inner);
    ExprPtr value = body.frame ? body.expr : lift(body.expr, j, inner);
    for (auto it = rebinds.rbegin(); it != rebinds.rend(); ++it) {
      value = nb::let(it->first, it->second, value);
    }

    ExprPtr guard =
        nb::prim_d(Prim::kAnyTrue, 0, {mask_var}, {}, Type::bool_());
    ExprPtr empty = nb::prim_d(Prim::kEmptyFrame, j, {mask_var}, {},
                               branch_frame_type);
    return nb::if_(guard, value, empty);
  }

  /// restrict at extension depth j-1: keeps the outer structure of the
  /// depth-j frames and filters the deepest level.
  ExprPtr restrict_ext(const ExprPtr& v, const ExprPtr& mask, int j) {
    if (j == 1) return nb::prim(Prim::kRestrict, {v, mask});
    return nb::prim_d(Prim::kRestrict, j - 1, {v, mask}, {1, 1}, v->type);
  }

  ExprPtr combine_ext(const ExprPtr& m, const ExprPtr& t, const ExprPtr& f,
                      int j) {
    if (j == 1) return nb::prim(Prim::kCombine, {m, t, f});
    return nb::prim_d(Prim::kCombine, j - 1, {m, t, f}, {1, 1, 1}, t->type);
  }

  // R2c: the iterator (canonical form [i <- range1(e1) : body]).
  Res tau_node(const Iterator& n, const ExprPtr& e0, int j, const Ctx& ctx) {
    PROTEUS_REQUIRE(TransformError, n.filter == nullptr,
                    "internal: filtered iterator survived canonicalization");
    const auto* dom = as<PrimCall>(n.domain);
    PROTEUS_REQUIRE(TransformError,
                    dom != nullptr && dom->op == Prim::kRange1,
                    "internal: non-canonical iterator domain");
    log_rule("R2c", e0, j);

    Res ib = tau(dom->args[0], j, ctx);
    ExprPtr ib_expr = ib.expr;
    if (j >= 1 && !ib.frame) {
      // Replicate the uniform bound across the frame ("we rely on parallel
      // extensions ... to replicate such single values").
      ib_expr = lift(ib_expr, j, ctx);
    }
    std::string ibname = names_.fresh("ib");
    ExprPtr ibvar = nb::var(ibname, ib_expr->type);

    // i = range1^j(ib): the depth-(j+1) index frame.
    ExprPtr index_frame =
        j == 0 ? nb::prim(Prim::kRange1, {ibvar})
               : nb::prim_d(Prim::kRange1, j, {ibvar}, {1},
                            Type::seq_n(Type::seq(Type::int_()), j));

    Ctx inner;
    // Broadcast variables remain visible; stale frame variables (not
    // dist'ed below) are dropped.
    for (const auto& [name, info] : ctx.vars) {
      if (info.cls == VarClass::kBroadcast) inner.vars.emplace(name, info);
    }

    // dist every frame variable occurring in the body through the new
    // iterator level.
    std::vector<std::pair<std::string, ExprPtr>> rebinds;
    if (j >= 1) {
      for (const std::string& name : cached_free_vars(n.body)) {
        if (name == n.var) continue;
        auto it = ctx.vars.find(name);
        if (it == ctx.vars.end() || it->second.cls != VarClass::kFrame) {
          continue;
        }
        ExprPtr vvar = nb::var(name, it->second.type);
        ExprPtr dist = nb::prim_d(Prim::kDist, j, {vvar, ibvar}, {1, 1},
                                  Type::seq_n(strip_seq(it->second.type, j),
                                              j + 1));
        rebinds.emplace_back(name, dist);
        inner.vars[name] = VarInfo{VarClass::kFrame, dist->type};
      }
    }

    // Bind the index variable and a fresh, unshadowable witness alias.
    const TypePtr index_type = index_frame->type;
    inner.vars[n.var] = VarInfo{VarClass::kFrame, index_type};
    std::string wname = names_.fresh("w");
    inner.vars[wname] = VarInfo{VarClass::kFrame, index_type};
    inner.witness = wname;
    inner.witness_type = index_type;

    Res body = tau(n.body, j + 1, inner);
    ExprPtr value =
        body.frame ? body.expr : lift(body.expr, j + 1, inner);

    for (auto it = rebinds.rbegin(); it != rebinds.rend(); ++it) {
      value = nb::let(it->first, it->second, value);
    }
    value = nb::let(wname, nb::var(n.var, index_type), value);
    value = nb::let(n.var, index_frame, value);
    value = nb::let(ibname, ib_expr, value);
    return {value, j >= 1};
  }

  // R2c application rule, primitive case.
  Res tau_node(const PrimCall& n, const ExprPtr& e, int j, const Ctx& ctx) {
    PROTEUS_REQUIRE(TransformError, n.depth == 0,
                    "flatten given an already-extended primitive call");
    std::vector<Res> args;
    args.reserve(n.args.size());
    bool any_frame = false;
    for (const ExprPtr& a : n.args) {
      args.push_back(tau(a, j, ctx));
      any_frame = any_frame || args.back().frame;
    }
    if (!any_frame) {
      return {rebuild_prim(n.op, args, e), false};
    }
    std::vector<ExprPtr> exprs;
    std::vector<std::uint8_t> lifted;
    for (Res& r : args) {
      if (!r.frame && !opts_.broadcast_invariant_seq_args &&
          r.expr->type->is_seq()) {
        // Ablation mode: replicate invariant sequence arguments (the
        // behaviour Section 4.5 calls a waste of time and space).
        r = Res{lift(r.expr, j, ctx), true};
      }
      exprs.push_back(r.expr);
      lifted.push_back(r.frame ? 1 : 0);
    }
    return {nb::prim_d(n.op, j, std::move(exprs), std::move(lifted),
                       Type::seq_n(e->type, j)),
            true};
  }

  ExprPtr rebuild_prim(Prim op, const std::vector<Res>& args,
                       const ExprPtr& e) {
    std::vector<ExprPtr> exprs;
    exprs.reserve(args.size());
    for (const Res& r : args) exprs.push_back(r.expr);
    return make_expr(PrimCall{op, 0, std::move(exprs), {}}, e->type, e->loc);
  }

  // R2c application rule, user-function case: invariant non-function
  // arguments are converted to depth-j frames "in a uniform way"
  // (Section 3), function-typed arguments stay depth-0 values.
  Res tau_node(const FunCall& n, const ExprPtr& e, int j, const Ctx& ctx) {
    PROTEUS_REQUIRE(TransformError, n.depth == 0,
                    "flatten given an already-extended function call");
    std::vector<Res> args;
    bool any_frame = false;
    for (const ExprPtr& a : n.args) {
      args.push_back(tau(a, j, ctx));
      any_frame = any_frame || args.back().frame;
    }
    if (!any_frame) {
      std::vector<ExprPtr> exprs;
      for (const Res& r : args) exprs.push_back(r.expr);
      return {make_expr(FunCall{n.name, 0, std::move(exprs), {}}, e->type,
                        e->loc),
              false};
    }
    std::vector<ExprPtr> exprs;
    std::vector<std::uint8_t> lifted;
    for (Res& r : args) {
      const bool is_fun_arg = r.expr->type->is_fun();
      if (!is_fun_arg && !r.frame) r = Res{lift(r.expr, j, ctx), true};
      exprs.push_back(r.expr);
      lifted.push_back(is_fun_arg ? 0 : 1);
    }
    request_extension(n.name);
    log_rule("R0", e, j);
    return {nb::fun_call(n.name, j, std::move(exprs), std::move(lifted),
                         Type::seq_n(e->type, j)),
            true};
  }

  Res tau_node(const IndirectCall& n, const ExprPtr& e, int j,
               const Ctx& ctx) {
    PROTEUS_REQUIRE(TransformError, n.depth == 0,
                    "flatten given an already-extended indirect call");
    Res fn = tau(n.fn, j, ctx);
    PROTEUS_REQUIRE(TransformError, !fn.frame,
                    "function values cannot vary across a frame");
    std::vector<Res> args;
    bool any_frame = false;
    for (const ExprPtr& a : n.args) {
      args.push_back(tau(a, j, ctx));
      any_frame = any_frame || args.back().frame;
    }
    if (!any_frame) {
      std::vector<ExprPtr> exprs;
      for (const Res& r : args) exprs.push_back(r.expr);
      return {make_expr(IndirectCall{fn.expr, 0, std::move(exprs), {}},
                        e->type, e->loc),
              false};
    }
    std::vector<ExprPtr> exprs;
    std::vector<std::uint8_t> lifted;
    for (Res& r : args) {
      const bool is_fun_arg = r.expr->type->is_fun();
      if (!is_fun_arg && !r.frame) r = Res{lift(r.expr, j, ctx), true};
      exprs.push_back(r.expr);
      lifted.push_back(is_fun_arg ? 0 : 1);
    }
    return {make_expr(
                IndirectCall{fn.expr, j, std::move(exprs), std::move(lifted)},
                Type::seq_n(e->type, j), e->loc),
            true};
  }

  Res tau_node(const TupleExpr& n, const ExprPtr& e, int j, const Ctx& ctx) {
    std::vector<Res> elems;
    bool any_frame = false;
    for (const ExprPtr& el : n.elems) {
      elems.push_back(tau(el, j, ctx));
      any_frame = any_frame || elems.back().frame;
    }
    std::vector<ExprPtr> exprs;
    for (Res& r : elems) {
      if (any_frame && !r.frame) r = Res{lift(r.expr, j, ctx), true};
      exprs.push_back(r.expr);
    }
    const int depth = any_frame ? j : 0;
    return {make_expr(TupleExpr{std::move(exprs), depth},
                      any_frame ? Type::seq_n(e->type, j) : e->type, e->loc),
            any_frame};
  }

  Res tau_node(const TupleGet& n, const ExprPtr& e, int j, const Ctx& ctx) {
    Res tuple = tau(n.tuple, j, ctx);
    if (!tuple.frame) {
      return {make_expr(TupleGet{tuple.expr, n.index, 0}, e->type, e->loc),
              false};
    }
    return {make_expr(TupleGet{tuple.expr, n.index, j},
                      Type::seq_n(e->type, j), e->loc),
            true};
  }

  Res tau_node(const SeqExpr& n, const ExprPtr& e, int j, const Ctx& ctx) {
    std::vector<Res> elems;
    bool any_frame = false;
    for (const ExprPtr& el : n.elems) {
      elems.push_back(tau(el, j, ctx));
      any_frame = any_frame || elems.back().frame;
    }
    std::vector<ExprPtr> exprs;
    for (Res& r : elems) {
      if (any_frame && !r.frame) r = Res{lift(r.expr, j, ctx), true};
      exprs.push_back(r.expr);
    }
    const int depth = any_frame ? j : 0;
    return {make_expr(SeqExpr{std::move(exprs), n.elem_type, depth},
                      any_frame ? Type::seq_n(e->type, j) : e->type, e->loc),
            any_frame};
  }

  Res tau_node(const Call&, const ExprPtr&, int, const Ctx&) {
    throw TransformError("flatten requires a checked program (Call node)");
  }

  Res tau_node(const LambdaExpr&, const ExprPtr&, int, const Ctx&) {
    throw TransformError(
        "flatten requires lambda-lifted input (LambdaExpr node)");
  }

  /// Replicates a depth-0 value to a depth-j frame conformable with the
  /// current witness:
  ///   j == 1: dist(e, #W)
  ///   j >= 2: insert(dist(e, #extract(W, j-1)), W, j-1)
  /// (Section 3's uniform conversion, composed from Table 2 and Section 4
  /// primitives.)
  ExprPtr lift(const ExprPtr& value, int j, const Ctx& ctx) {
    PROTEUS_REQUIRE(TransformError, j >= 1 && !ctx.witness.empty(),
                    "internal: no frame witness available for replication");
    PROTEUS_REQUIRE(TransformError, !value->type->is_fun(),
                    "function values cannot be replicated into frames");
    ExprPtr w = nb::var(ctx.witness, ctx.witness_type);
    if (j == 1) {
      ExprPtr n = nb::prim(Prim::kLength, {w});
      return nb::prim(Prim::kDist, {value, n});
    }
    ExprPtr flat = nb::prim_d(Prim::kExtract, 0,
                              {w, nb::int_lit(j - 1)}, {},
                              strip_seq(ctx.witness_type, j - 1));
    ExprPtr n = nb::prim(Prim::kLength, {flat});
    ExprPtr d = nb::prim(Prim::kDist, {value, n});
    return nb::prim_d(Prim::kInsert, 0, {d, w, nb::int_lit(j - 1)}, {},
                      Type::seq_n(value->type, j));
  }

  const Program& input_;
  NameGen& names_;
  FlattenOptions opts_;
  Program output_;
  RuleCounts rules_;
  std::set<std::string> generated_;
  std::vector<std::string> worklist_;
  std::unordered_map<ExprPtr, std::set<std::string>> free_cache_;
};

}  // namespace

FlattenedProgram flatten(const Program& canonical, NameGen& names,
                         const FlattenOptions& options) {
  return Flattener(canonical, names, options).run();
}

ExprPtr flatten_expression(const Program& canonical, const ExprPtr& expr,
                           NameGen& names, FlattenedProgram* out,
                           const FlattenOptions& options) {
  Flattener f(canonical, names, options);
  ExprPtr result = f.run_expression(expr);
  if (out != nullptr) *out = f.take_program();
  return result;
}

}  // namespace proteus::xform
