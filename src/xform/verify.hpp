// verify.hpp — structural well-formedness checker for transformed (V-form)
// programs.
//
// A valid V program (Section 4's target notation, as produced by the full
// pipeline) satisfies:
//   * no Iterator, no unresolved Call, no LambdaExpr nodes;
//   * every call-like node has extension depth <= 1 (post-T1), except the
//     empty_frame depth marker and whole-frame any_true;
//   * lifted flags have one entry per argument (or are empty), and calls
//     at depth 1 have at least one lifted argument;
//   * every FunCall target is defined in the program, and every function
//     value that can reach a depth-1 IndirectCall has its ^1 extension;
//   * every node carries a type annotation, and extract/insert/empty_frame
//     carry literal depth arguments;
//   * variables are in scope (no free variables escape their binders).
//
// The checker throws TransformError with a path to the offending node.
// It runs in every pipeline test over every program in the repository,
// turning "the transformation produced something odd" into a loud,
// located failure instead of a downstream executor error.
#pragma once

#include "lang/ast.hpp"

namespace proteus::xform {

/// Verifies one V expression in the scope of `program` with the given
/// variables in scope. Throws TransformError on the first violation.
void verify_vector_expression(const lang::Program& program,
                              const lang::ExprPtr& expr,
                              const std::vector<std::string>& in_scope = {});

/// Verifies every function body of a V program.
void verify_vector_program(const lang::Program& program);

}  // namespace proteus::xform
