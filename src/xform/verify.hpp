// verify.hpp — throw-on-failure facade over the static analyzer for
// transformed (V-form) programs.
//
// The structural well-formedness checks that used to live here (no
// surviving Iterator/Call/Lambda nodes, depth <= 1 post-T1, lift-flag
// arity, defined call targets, type annotations, literal depth arguments,
// variable scope) are now part of the shape/depth analyzer in
// src/analysis/shape.hpp, which reports every violation as a structured
// Diagnostic instead of throwing at the first one. These entry points keep
// the old contract for callers that want a hard failure: they run the
// analyzer and throw analysis::AnalysisError (a TransformError) carrying
// the full report when it finds errors.
#pragma once

#include "lang/ast.hpp"

namespace proteus::xform {

/// Verifies one V expression in the scope of `program` with the given
/// variables in scope. Throws analysis::AnalysisError on violations.
void verify_vector_expression(const lang::Program& program,
                              const lang::ExprPtr& expr,
                              const std::vector<std::string>& in_scope = {});

/// Verifies every function body of a V program.
void verify_vector_program(const lang::Program& program);

}  // namespace proteus::xform
