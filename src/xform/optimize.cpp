#include "xform/optimize.hpp"

#include <utility>

#include "vl/check.hpp"
#include "xform/freevars.hpp"

namespace proteus::xform {

using namespace lang;

namespace {

/// Is `init` the replication pattern `dist^j(v, ib)` with a variable
/// source? Returns the source VarRef and depth through the out-params.
bool is_dist_of_var(const ExprPtr& init, ExprPtr* source, ExprPtr* counts,
                    int* depth) {
  const auto* call = as<PrimCall>(init);
  if (call == nullptr || call->op != Prim::kDist || call->depth < 1) {
    return false;
  }
  const auto* src = as<VarRef>(call->args[0]);
  const auto* cnt = as<VarRef>(call->args[1]);
  if (src == nullptr || src->is_function || cnt == nullptr ||
      cnt->is_function) {
    return false;
  }
  *source = call->args[0];
  *counts = call->args[1];
  *depth = call->depth;
  return true;
}

class SharedRows {
 public:
  ExprPtr rewrite(const ExprPtr& e) {
    if (e == nullptr) return nullptr;
    return std::visit(
        [&](const auto& node) { return rewrite_node(node, e); }, e->node);
  }

 private:
  template <typename T>
  ExprPtr rewrite_node(const T& node, const ExprPtr& e) {
    if constexpr (std::is_same_v<T, Let>) {
      return rewrite_let(node, e);
    } else if constexpr (std::is_same_v<T, IntLit> ||
                         std::is_same_v<T, RealLit> ||
                         std::is_same_v<T, BoolLit> ||
                         std::is_same_v<T, VarRef>) {
      return e;
    } else if constexpr (std::is_same_v<T, If>) {
      return make_expr(If{rewrite(node.cond), rewrite(node.then_expr),
                          rewrite(node.else_expr)},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, PrimCall>) {
      return make_expr(
          PrimCall{node.op, node.depth, rewrite_all(node.args), node.lifted},
          e->type, e->loc);
    } else if constexpr (std::is_same_v<T, FunCall>) {
      return make_expr(
          FunCall{node.name, node.depth, rewrite_all(node.args), node.lifted},
          e->type, e->loc);
    } else if constexpr (std::is_same_v<T, IndirectCall>) {
      return make_expr(IndirectCall{rewrite(node.fn), node.depth,
                                    rewrite_all(node.args), node.lifted},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, TupleExpr>) {
      return make_expr(TupleExpr{rewrite_all(node.elems), node.depth},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, TupleGet>) {
      return make_expr(TupleGet{rewrite(node.tuple), node.index, node.depth},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, SeqExpr>) {
      return make_expr(
          SeqExpr{rewrite_all(node.elems), node.elem_type, node.depth},
          e->type, e->loc);
    } else {
      throw TransformError(
          "optimizer expects flattened input (Iterator/Call/Lambda found)");
    }
  }

  std::vector<ExprPtr> rewrite_all(const std::vector<ExprPtr>& items) {
    std::vector<ExprPtr> out;
    out.reserve(items.size());
    for (const ExprPtr& it : items) out.push_back(rewrite(it));
    return out;
  }

  ExprPtr rewrite_let(const Let& node, const ExprPtr& e) {
    ExprPtr init = rewrite(node.init);
    ExprPtr body = rewrite(node.body);

    ExprPtr source;
    ExprPtr counts;
    int dist_depth = 0;
    if (is_dist_of_var(init, &source, &counts, &dist_depth)) {
      bool all_uses_are_sources = true;
      ExprPtr replaced = replace_uses(body, node.var, source, counts,
                                      dist_depth, &all_uses_are_sources);
      if (all_uses_are_sources) {
        // Every use became a shared-row gather; the replication is dead.
        return replaced;
      }
    }
    return make_expr(Let{node.var, std::move(init), std::move(body)}, e->type,
                     e->loc);
  }

  /// Replaces every `seq_index^{j+1}(V, idx)` use of `name` with
  /// `seq_index_inner^j(source, idx)` and every `length^{j+1}(V)` with
  /// `dist^j(length^j(source), counts)`. Any other use of `name` clears
  /// `*ok`. Scope-aware: shadowing binders stop the substitution.
  ExprPtr replace_uses(const ExprPtr& e, const std::string& name,
                       const ExprPtr& source, const ExprPtr& counts,
                       int dist_depth, bool* ok) {
    if (e == nullptr || !*ok) return e;
    if (const auto* var = as<VarRef>(e)) {
      if (!var->is_function && var->name == name) *ok = false;  // bare use
      return e;
    }
    if (const auto* call = as<PrimCall>(e)) {
      if (call->op == Prim::kSeqIndex && call->depth == dist_depth + 1 &&
          call->args.size() == 2) {
        const auto* src = as<VarRef>(call->args[0]);
        if (src != nullptr && !src->is_function && src->name == name) {
          ExprPtr idx = replace_uses(call->args[1], name, source, counts,
                                     dist_depth, ok);
          return make_expr(PrimCall{Prim::kSeqIndexInner, dist_depth,
                                    {source, std::move(idx)},
                                    {1, 1}},
                           e->type, e->loc);
        }
      }
      if (call->op == Prim::kLength && call->depth == dist_depth + 1 &&
          call->args.size() == 1) {
        const auto* src = as<VarRef>(call->args[0]);
        if (src != nullptr && !src->is_function && src->name == name) {
          // lengths of replicated rows == replicated lengths of the rows
          ExprPtr row_lengths = make_expr(
              PrimCall{Prim::kLength, dist_depth, {source}, {1}},
              Type::seq_n(Type::int_(), dist_depth), e->loc);
          return make_expr(PrimCall{Prim::kDist, dist_depth,
                                    {std::move(row_lengths), counts},
                                    {1, 1}},
                           e->type, e->loc);
        }
      }
      std::vector<ExprPtr> args;
      for (const ExprPtr& a : call->args) {
        args.push_back(replace_uses(a, name, source, counts, dist_depth, ok));
      }
      return make_expr(PrimCall{call->op, call->depth, std::move(args),
                                call->lifted},
                       e->type, e->loc);
    }
    if (const auto* let = as<Let>(e)) {
      ExprPtr init = replace_uses(let->init, name, source, counts, dist_depth, ok);
      // A binder shadowing the replicated variable, the shared source, or
      // the replication counts ends the region where the rewrite is sound.
      const auto* src_var = as<VarRef>(source);
      const auto* cnt_var = as<VarRef>(counts);
      ExprPtr body = let->body;
      if (let->var == name) {
        // Occurrences below refer to the inner binding; nothing to do.
      } else if ((src_var != nullptr && let->var == src_var->name) ||
                 (cnt_var != nullptr && let->var == cnt_var->name)) {
        // The shared source (or its counts) is shadowed below; remaining
        // uses of the replicated variable there cannot be rewritten.
        if (occurs_free(let->body, name)) *ok = false;
      } else {
        body = replace_uses(let->body, name, source, counts, dist_depth, ok);
      }
      return make_expr(Let{let->var, std::move(init), std::move(body)},
                       e->type, e->loc);
    }
    if (const auto* cond = as<If>(e)) {
      return make_expr(
          If{replace_uses(cond->cond, name, source, counts, dist_depth, ok),
             replace_uses(cond->then_expr, name, source, counts, dist_depth,
                          ok),
             replace_uses(cond->else_expr, name, source, counts, dist_depth,
                          ok)},
          e->type, e->loc);
    }
    if (const auto* fn = as<FunCall>(e)) {
      std::vector<ExprPtr> args;
      for (const ExprPtr& a : fn->args) {
        args.push_back(replace_uses(a, name, source, counts, dist_depth, ok));
      }
      return make_expr(FunCall{fn->name, fn->depth, std::move(args),
                               fn->lifted},
                       e->type, e->loc);
    }
    if (const auto* in = as<IndirectCall>(e)) {
      std::vector<ExprPtr> args;
      for (const ExprPtr& a : in->args) {
        args.push_back(replace_uses(a, name, source, counts, dist_depth, ok));
      }
      return make_expr(
          IndirectCall{replace_uses(in->fn, name, source, counts, dist_depth,
                                    ok),
                       in->depth, std::move(args), in->lifted},
          e->type, e->loc);
    }
    if (const auto* tup = as<TupleExpr>(e)) {
      std::vector<ExprPtr> elems;
      for (const ExprPtr& a : tup->elems) {
        elems.push_back(
            replace_uses(a, name, source, counts, dist_depth, ok));
      }
      return make_expr(TupleExpr{std::move(elems), tup->depth}, e->type,
                       e->loc);
    }
    if (const auto* get = as<TupleGet>(e)) {
      return make_expr(
          TupleGet{replace_uses(get->tuple, name, source, counts, dist_depth,
                                ok),
                   get->index, get->depth},
          e->type, e->loc);
    }
    if (const auto* lit = as<SeqExpr>(e)) {
      std::vector<ExprPtr> elems;
      for (const ExprPtr& a : lit->elems) {
        elems.push_back(
            replace_uses(a, name, source, counts, dist_depth, ok));
      }
      return make_expr(SeqExpr{std::move(elems), lit->elem_type, lit->depth},
                       e->type, e->loc);
    }
    return e;  // literals
  }
};

}  // namespace

namespace {

class DeadLets {
 public:
  ExprPtr rewrite(const ExprPtr& e) {
    if (e == nullptr) return nullptr;
    return std::visit(
        [&](const auto& node) { return rewrite_node(node, e); }, e->node);
  }

 private:
  template <typename T>
  ExprPtr rewrite_node(const T& node, const ExprPtr& e) {
    if constexpr (std::is_same_v<T, Let>) {
      ExprPtr body = rewrite(node.body);
      if (!occurs_free(body, node.var)) return body;
      return make_expr(Let{node.var, rewrite(node.init), std::move(body)},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, IntLit> ||
                         std::is_same_v<T, RealLit> ||
                         std::is_same_v<T, BoolLit> ||
                         std::is_same_v<T, VarRef>) {
      return e;
    } else if constexpr (std::is_same_v<T, If>) {
      return make_expr(If{rewrite(node.cond), rewrite(node.then_expr),
                          rewrite(node.else_expr)},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, PrimCall>) {
      return make_expr(
          PrimCall{node.op, node.depth, rewrite_all(node.args), node.lifted},
          e->type, e->loc);
    } else if constexpr (std::is_same_v<T, FunCall>) {
      return make_expr(
          FunCall{node.name, node.depth, rewrite_all(node.args), node.lifted},
          e->type, e->loc);
    } else if constexpr (std::is_same_v<T, IndirectCall>) {
      return make_expr(IndirectCall{rewrite(node.fn), node.depth,
                                    rewrite_all(node.args), node.lifted},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, TupleExpr>) {
      return make_expr(TupleExpr{rewrite_all(node.elems), node.depth},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, TupleGet>) {
      return make_expr(TupleGet{rewrite(node.tuple), node.index, node.depth},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, SeqExpr>) {
      return make_expr(
          SeqExpr{rewrite_all(node.elems), node.elem_type, node.depth},
          e->type, e->loc);
    } else {
      // Iterator/Call/Lambda may legitimately appear when the pass is used
      // on un-flattened trees; leave them intact.
      return e;
    }
  }

  std::vector<ExprPtr> rewrite_all(const std::vector<ExprPtr>& items) {
    std::vector<ExprPtr> out;
    out.reserve(items.size());
    for (const ExprPtr& it : items) out.push_back(rewrite(it));
    return out;
  }
};

}  // namespace

ExprPtr optimize_shared_rows(const ExprPtr& e) {
  return SharedRows().rewrite(e);
}

ExprPtr remove_dead_lets(const ExprPtr& e) { return DeadLets().rewrite(e); }

Program remove_dead_lets(const Program& program) {
  Program out;
  out.functions.reserve(program.functions.size());
  for (const FunDef& f : program.functions) {
    FunDef g = f;
    g.body = remove_dead_lets(f.body);
    out.functions.push_back(std::move(g));
  }
  return out;
}

Program optimize_shared_rows(const Program& flattened) {
  Program out;
  out.functions.reserve(flattened.functions.size());
  for (const FunDef& f : flattened.functions) {
    FunDef g = f;
    g.body = optimize_shared_rows(f.body);
    out.functions.push_back(std::move(g));
  }
  return out;
}

}  // namespace proteus::xform
