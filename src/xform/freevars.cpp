#include "xform/freevars.hpp"

namespace proteus::xform {

using namespace lang;

namespace {

void collect(const ExprPtr& e, std::set<std::string>& bound,
             std::set<std::string>& free) {
  if (e == nullptr) return;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarRef>) {
          if (!node.is_function && !bound.contains(node.name)) {
            free.insert(node.name);
          }
        } else if constexpr (std::is_same_v<T, Let>) {
          collect(node.init, bound, free);
          const bool was_bound = bound.contains(node.var);
          bound.insert(node.var);
          collect(node.body, bound, free);
          if (!was_bound) bound.erase(node.var);
        } else if constexpr (std::is_same_v<T, If>) {
          collect(node.cond, bound, free);
          collect(node.then_expr, bound, free);
          collect(node.else_expr, bound, free);
        } else if constexpr (std::is_same_v<T, Iterator>) {
          collect(node.domain, bound, free);
          const bool was_bound = bound.contains(node.var);
          bound.insert(node.var);
          collect(node.filter, bound, free);
          collect(node.body, bound, free);
          if (!was_bound) bound.erase(node.var);
        } else if constexpr (std::is_same_v<T, Call>) {
          collect(node.callee, bound, free);
          for (const ExprPtr& a : node.args) collect(a, bound, free);
        } else if constexpr (std::is_same_v<T, PrimCall> ||
                             std::is_same_v<T, FunCall>) {
          for (const ExprPtr& a : node.args) collect(a, bound, free);
        } else if constexpr (std::is_same_v<T, IndirectCall>) {
          collect(node.fn, bound, free);
          for (const ExprPtr& a : node.args) collect(a, bound, free);
        } else if constexpr (std::is_same_v<T, TupleExpr> ||
                             std::is_same_v<T, SeqExpr>) {
          for (const ExprPtr& a : node.elems) collect(a, bound, free);
        } else if constexpr (std::is_same_v<T, TupleGet>) {
          collect(node.tuple, bound, free);
        } else if constexpr (std::is_same_v<T, LambdaExpr>) {
          // Fully parameterized: a lambda's body can reference only its own
          // parameters, so it contributes no free variables.
        }
        // Literals contribute nothing.
      },
      e->node);
}

}  // namespace

std::set<std::string> free_vars(const ExprPtr& e) {
  std::set<std::string> bound;
  std::set<std::string> free;
  collect(e, bound, free);
  return free;
}

bool occurs_free(const ExprPtr& e, const std::string& name) {
  return free_vars(e).contains(name);
}

}  // namespace proteus::xform
