// pipeline.hpp — the end-to-end directed-transformation pipeline:
//
//   parse -> typecheck -> canonicalize (R1) -> flatten (R2) -> translate (T1)
//     -> assemble (V program -> vm bytecode module)
//
// mirroring the KIDS-driven process of the paper. Every intermediate stage
// is retained so tests and benches can compare engines and inspect the
// transformed forms (e.g. the Section 5 worked example).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "lang/ast.hpp"
#include "vm/fuse.hpp"
#include "xform/flatten.hpp"

namespace proteus::vm {
struct Module;
}

namespace proteus::xform {

struct PipelineOptions {
  FlattenOptions flatten;
  /// Section 4.5: rewrite replicated seq_index sources into shared-row
  /// gathers (removes the quadratic replication in flattened recursion).
  bool shared_row_gather = true;
  /// Run the static shape/depth analyzer (src/analysis) over the final V
  /// program (cheap; catches transformation bugs at compile time instead
  /// of run time). The report is retained in Compiled::analysis; errors
  /// throw analysis::AnalysisError.
  bool verify_output = true;
  /// Run the VCODE optimizer (src/vm/fuse.hpp) over the assembled
  /// module: elementwise chain fusion into single-pass superinstructions,
  /// copy propagation, dead-move elimination, and last-use marking for
  /// in-place buffer reuse (proteusc -O0 turns this off).
  bool optimize_vcode = true;
  /// Run the VCODE bytecode verifier (src/vm/verify.hpp) over the
  /// assembled (and optimized) module (proteusc --no-verify-vcode turns
  /// this off).
  bool verify_vcode = true;
  /// Run the buffer-lifetime / memory-plan analyzer (analysis/lifetime.hpp)
  /// over the final module(s) and attach the resulting MemoryPlan to them
  /// (vm::Module::plan) — the artifact behind plan-backed arena execution,
  /// admission control, and `proteusc --analyze=memory`. M3xx findings
  /// land in Compiled::memory_report (warnings only; never fatal).
  bool plan_memory = true;
  /// Collect a KIDS-style derivation trace (one line per rule firing)
  /// into Compiled::derivation. Implemented over the obs span/event
  /// model: each firing is a "rule" instant event; with no tracer
  /// installed, compile() records into a pipeline-local one. The same
  /// events back the Chrome trace export, so the textual and JSON
  /// derivations cannot diverge.
  bool collect_trace = false;
};

/// All stages of a compiled program, plus (optionally) one entry
/// expression carried through the same stages.
struct Compiled {
  lang::Program checked;    ///< type-checked P program
  lang::Program canonical;  ///< after R1 / filter desugaring
  lang::Program flat;       ///< iterator-free, depth-annotated (post-R2)
  lang::Program vec;        ///< the V program (post-T1, depths <= 1)

  lang::ExprPtr entry_checked;  ///< null when no entry expression given
  lang::ExprPtr entry_flat;
  lang::ExprPtr entry_vec;

  /// The V program (and entry) assembled into linear bytecode — the
  /// module the vm engine executes (see src/vm/bytecode.hpp). When
  /// options.optimize_vcode is on this is the optimized module.
  std::shared_ptr<const vm::Module> module;

  /// The unoptimized (-O0) module, always retained so the runtime's
  /// degradation ladder can re-run a program without superinstructions
  /// after a fused-path trap. Pointer-equal to `module` when the
  /// optimizer was off or fell back (docs/ROBUSTNESS.md).
  std::shared_ptr<const vm::Module> module_o0;

  /// Human-readable notes for every compile-time degradation taken
  /// (optimizer trap, verifier rejection of the optimized module).
  /// Empty on a healthy compile.
  std::vector<std::string> compile_fallbacks;

  /// Tallies of the VCODE optimizer (zero when optimize_vcode is off).
  vm::FuseStats fusion;

  /// Findings of the static shape/depth analyzer and the bytecode
  /// verifier (populated when the respective options are on; an error-free
  /// report may still carry warnings).
  analysis::Report analysis;

  /// M3xx wasteful-pattern findings of the memory-plan analyzer (when
  /// options.plan_memory is on). Kept separate from `analysis`: these are
  /// advisory memory-efficiency observations about the *generated* VCODE,
  /// not source-program diagnostics, and they never affect exit codes.
  analysis::Report memory_report;

  /// Rule-by-rule derivation log (only when options.collect_trace).
  std::vector<std::string> derivation;

  /// Firing tallies of every transformation rule (R1/R1f from
  /// canonicalization, R2a–R2e/R0/hoist from flattening) — always
  /// collected; also attached as counters to the compile-phase spans.
  RuleCounts rule_counts;
};

/// Compiles a program (and an optional entry expression evaluated in its
/// scope) through every stage. Throws SyntaxError/TypeError/TransformError.
[[nodiscard]] Compiled compile(std::string_view program_source,
                               std::string_view entry_source = {},
                               const PipelineOptions& options = {});

}  // namespace proteus::xform
