#include "xform/canon.hpp"

#include <utility>

#include "lang/printer.hpp"
#include "obs/tracer.hpp"
#include "vl/check.hpp"

namespace proteus::xform {

using namespace lang;

namespace {

/// True when `domain` is already of the canonical form [1..e] — either
/// range1(e) or range(1, e).
bool is_canonical_domain(const ExprPtr& domain) {
  const auto* call = as<PrimCall>(domain);
  if (call == nullptr || call->depth != 0) return false;
  if (call->op == Prim::kRange1) return true;
  if (call->op == Prim::kRange) {
    const auto* lo = as<IntLit>(call->args[0]);
    return lo != nullptr && lo->value == 1;
  }
  return false;
}

/// Normalizes a canonical domain to range1(e).
ExprPtr as_range1(const ExprPtr& domain) {
  const auto* call = as<PrimCall>(domain);
  PROTEUS_ASSERT(call != nullptr, "canonical domain is not a primitive call");
  if (call->op == Prim::kRange1) return domain;
  return nb::prim(Prim::kRange1, {call->args[1]});
}

class Canon {
 public:
  explicit Canon(NameGen& names, RuleCounts* rules)
      : names_(names), rules_(rules) {}

  ExprPtr rewrite(const ExprPtr& e) {
    if (e == nullptr) return nullptr;
    return std::visit(
        [&](const auto& node) { return rewrite_node(node, e); }, e->node);
  }

 private:
  template <typename T>
  ExprPtr rewrite_node(const T& node, const ExprPtr& e) {
    // Structural cases: rebuild with rewritten children.
    if constexpr (std::is_same_v<T, IntLit> || std::is_same_v<T, RealLit> ||
                  std::is_same_v<T, BoolLit> || std::is_same_v<T, VarRef>) {
      return e;
    } else if constexpr (std::is_same_v<T, Let>) {
      return make_expr(Let{node.var, rewrite(node.init), rewrite(node.body)},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, If>) {
      return make_expr(If{rewrite(node.cond), rewrite(node.then_expr),
                          rewrite(node.else_expr)},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, Iterator>) {
      return rewrite_iterator(node, e);
    } else if constexpr (std::is_same_v<T, PrimCall>) {
      return make_expr(
          PrimCall{node.op, node.depth, rewrite_all(node.args), node.lifted},
          e->type, e->loc);
    } else if constexpr (std::is_same_v<T, FunCall>) {
      return make_expr(
          FunCall{node.name, node.depth, rewrite_all(node.args), node.lifted},
          e->type, e->loc);
    } else if constexpr (std::is_same_v<T, IndirectCall>) {
      return make_expr(IndirectCall{rewrite(node.fn), node.depth,
                                    rewrite_all(node.args), node.lifted},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, TupleExpr>) {
      return make_expr(TupleExpr{rewrite_all(node.elems)}, e->type, e->loc);
    } else if constexpr (std::is_same_v<T, TupleGet>) {
      return make_expr(TupleGet{rewrite(node.tuple), node.index}, e->type,
                       e->loc);
    } else if constexpr (std::is_same_v<T, SeqExpr>) {
      return make_expr(SeqExpr{rewrite_all(node.elems), node.elem_type},
                       e->type, e->loc);
    } else {
      throw TransformError(
          "canonicalization requires a checked program (found an unresolved "
          "Call or unlifted lambda)");
    }
  }

  std::vector<ExprPtr> rewrite_all(const std::vector<ExprPtr>& items) {
    std::vector<ExprPtr> out;
    out.reserve(items.size());
    for (const ExprPtr& it : items) out.push_back(rewrite(it));
    return out;
  }

  ExprPtr rewrite_iterator(const Iterator& node, const ExprPtr& e) {
    ExprPtr domain = rewrite(node.domain);
    ExprPtr body = rewrite(node.body);

    // Filter desugaring (Section 2):
    //   [x <- d | b : e] = [x <- restrict(d, [x <- d : b]) : e]
    if (node.filter != nullptr) {
      log_rule("R1f", e);
      ExprPtr filter = rewrite(node.filter);
      std::string dname = names_.fresh("d");
      std::string mname = names_.fresh("m");
      ExprPtr dvar = nb::var(dname, domain->type);
      ExprPtr mask_iter =
          canonical_iterator(node.var, dvar, filter,
                             Type::seq(Type::bool_()), e->loc);
      ExprPtr mvar = nb::var(mname, mask_iter->type);
      ExprPtr restricted = nb::prim(Prim::kRestrict, {dvar, mvar});
      ExprPtr inner =
          canonical_iterator(node.var, restricted, body, e->type, e->loc);
      return nb::let(dname, domain, nb::let(mname, mask_iter, inner));
    }
    return canonical_iterator(node.var, domain, body, e->type, e->loc);
  }

  /// Rule R1 proper: produce an iterator whose domain is range1(e).
  ExprPtr canonical_iterator(const std::string& var, ExprPtr domain,
                             ExprPtr body, TypePtr type, SourceLoc loc) {
    // Identity iterators ([x <- d : x], ubiquitous after filter
    // desugaring) are the domain itself.
    if (const auto* ref = as<VarRef>(body)) {
      if (!ref->is_function && ref->name == var) return domain;
    }
    if (is_canonical_domain(domain)) {
      return make_expr(Iterator{var, as_range1(domain), nullptr, body},
                       std::move(type), loc);
    }
    log_rule("R1", domain);
    std::string vname = names_.fresh("v");
    std::string iname = names_.fresh("i");
    ExprPtr vvar = nb::var(vname, domain->type);
    ExprPtr ivar = nb::var(iname, Type::int_());
    ExprPtr new_domain =
        nb::prim(Prim::kRange1, {nb::prim(Prim::kLength, {vvar})});
    ExprPtr elem = nb::prim(Prim::kSeqIndex, {vvar, ivar});
    ExprPtr new_body = nb::let(var, elem, body);
    ExprPtr iter = make_expr(Iterator{iname, new_domain, nullptr, new_body},
                             std::move(type), loc);
    return nb::let(vname, domain, iter);
  }

  /// Tallies an R1-family firing and mirrors it as a "rule" instant
  /// event on the installed tracer (same shape as the R2 events of
  /// flatten.cpp, so one renderer serves the whole derivation).
  void log_rule(const char* rule, const ExprPtr& e) {
    if (rules_ != nullptr) (*rules_)[rule] += 1;
    obs::Tracer* t = obs::tracer();
    if (t == nullptr) return;
    std::string text = to_text(e);
    if (text.size() > 64) text = text.substr(0, 61) + "...";
    t->instant("rule", rule, std::move(text), {{"depth", 0}});
  }

  NameGen& names_;
  RuleCounts* rules_;
};

}  // namespace

ExprPtr canonicalize(const ExprPtr& e, NameGen& names, RuleCounts* rules) {
  return Canon(names, rules).rewrite(e);
}

Program canonicalize(const Program& program, NameGen& names,
                     RuleCounts* rules) {
  Program out;
  out.functions.reserve(program.functions.size());
  for (const FunDef& f : program.functions) {
    FunDef g = f;
    g.body = canonicalize(f.body, names, rules);
    out.functions.push_back(std::move(g));
  }
  return out;
}

}  // namespace proteus::xform
