#include "xform/verify.hpp"

#include <utility>

#include "analysis/shape.hpp"

namespace proteus::xform {

void verify_vector_expression(const lang::Program& program,
                              const lang::ExprPtr& expr,
                              const std::vector<std::string>& in_scope) {
  analysis::Report report =
      analysis::analyze_expression(program, expr, in_scope);
  if (!report.ok()) throw analysis::AnalysisError(std::move(report));
}

void verify_vector_program(const lang::Program& program) {
  analysis::Report report = analysis::analyze_program(program);
  if (!report.ok()) throw analysis::AnalysisError(std::move(report));
}

}  // namespace proteus::xform
