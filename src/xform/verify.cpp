#include "xform/verify.hpp"

#include <set>
#include <string>

#include "vl/check.hpp"

namespace proteus::xform {

using namespace lang;

namespace {

class Verifier {
 public:
  explicit Verifier(const Program& program) : program_(program) {}

  void function(const FunDef& f) {
    path_ = "fun " + f.name;
    std::set<std::string> scope;
    for (const Param& p : f.params) scope.insert(p.name);
    check(f.body, scope);
  }

  void expression(const ExprPtr& e, const std::vector<std::string>& vars) {
    path_ = "<expression>";
    std::set<std::string> scope(vars.begin(), vars.end());
    check(e, scope);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw TransformError("V-form verification failed in " + path_ + ": " +
                         msg);
  }

  void require(bool cond, const std::string& msg) const {
    if (!cond) fail(msg);
  }

  void check_call_shape(std::size_t args, int depth,
                        const std::vector<std::uint8_t>& lifted,
                        const char* what) {
    require(depth >= 0 && depth <= 1,
            std::string(what) + " has extension depth " +
                std::to_string(depth) + " (> 1: T1 was not applied?)");
    require(lifted.empty() || lifted.size() == args,
            std::string(what) + " has " + std::to_string(lifted.size()) +
                " lift flags for " + std::to_string(args) + " arguments");
    if (depth == 1 && !lifted.empty()) {
      bool any = false;
      for (std::uint8_t f : lifted) any = any || f != 0;
      require(any, std::string(what) +
                       " at depth 1 broadcasts every argument (should have "
                       "been hoisted to depth 0)");
    }
  }

  static bool is_int_literal(const ExprPtr& e) {
    return as<IntLit>(e) != nullptr;
  }

  void check(const ExprPtr& e, std::set<std::string>& scope) {
    require(e != nullptr, "null expression");
    require(e->type != nullptr, "expression lacks a type annotation");
    std::visit([&](const auto& node) { check_node(node, e, scope); },
               e->node);
  }

  void check_node(const IntLit&, const ExprPtr&, std::set<std::string>&) {}
  void check_node(const RealLit&, const ExprPtr&, std::set<std::string>&) {}
  void check_node(const BoolLit&, const ExprPtr&, std::set<std::string>&) {}

  void check_node(const VarRef& n, const ExprPtr&,
                  std::set<std::string>& scope) {
    if (n.is_function) {
      require(program_.contains(n.name),
              "function value '" + n.name + "' is not defined");
      return;
    }
    require(scope.contains(n.name),
            "variable '" + n.name + "' is not in scope");
  }

  void check_node(const Let& n, const ExprPtr&, std::set<std::string>& scope) {
    check(n.init, scope);
    const bool shadowed = scope.contains(n.var);
    scope.insert(n.var);
    check(n.body, scope);
    if (!shadowed) scope.erase(n.var);
  }

  void check_node(const If& n, const ExprPtr&, std::set<std::string>& scope) {
    check(n.cond, scope);
    require(n.cond->type->kind() == TypeKind::kBool,
            "V conditional has a non-bool (non-scalar) condition");
    check(n.then_expr, scope);
    check(n.else_expr, scope);
  }

  void check_node(const Iterator&, const ExprPtr&, std::set<std::string>&) {
    fail("iterator survived the transformation");
  }
  void check_node(const Call&, const ExprPtr&, std::set<std::string>&) {
    fail("unresolved Call node");
  }
  void check_node(const LambdaExpr&, const ExprPtr&, std::set<std::string>&) {
    fail("unlifted lambda");
  }

  void check_node(const PrimCall& n, const ExprPtr&,
                  std::set<std::string>& scope) {
    for (const ExprPtr& a : n.args) check(a, scope);
    if (n.op == Prim::kEmptyFrame) {
      require(n.depth >= 1, "empty_frame lacks its frame-depth marker");
      require(n.args.size() == 1, "empty_frame takes exactly the mask");
      return;
    }
    if (n.op == Prim::kAnyTrue) {
      require(n.depth == 0, "any_true is a whole-frame (depth-0) primitive");
      return;
    }
    if (n.op == Prim::kExtract) {
      require(n.args.size() == 2 && is_int_literal(n.args[1]),
              "extract needs a literal depth argument");
      return;
    }
    if (n.op == Prim::kInsert) {
      require(n.args.size() == 3 && is_int_literal(n.args[2]),
              "insert needs a literal depth argument");
      return;
    }
    check_call_shape(n.args.size(), n.depth, n.lifted,
                     prim_name(n.op));
  }

  void check_node(const FunCall& n, const ExprPtr&,
                  std::set<std::string>& scope) {
    for (const ExprPtr& a : n.args) check(a, scope);
    require(n.depth == 0,
            "user call '" + n.name + "' still has extension depth " +
                std::to_string(n.depth) + " (T1 renames depth-1 calls)");
    require(program_.contains(n.name),
            "call target '" + n.name + "' is not defined");
  }

  void check_node(const IndirectCall& n, const ExprPtr&,
                  std::set<std::string>& scope) {
    check(n.fn, scope);
    for (const ExprPtr& a : n.args) check(a, scope);
    check_call_shape(n.args.size(), n.depth, n.lifted, "indirect call");
    require(n.fn->type != nullptr && n.fn->type->is_fun(),
            "indirect call through a non-function value");
  }

  void check_node(const TupleExpr& n, const ExprPtr&,
                  std::set<std::string>& scope) {
    for (const ExprPtr& a : n.elems) check(a, scope);
    require(n.depth <= 1, "tuple_cons has extension depth > 1");
  }

  void check_node(const TupleGet& n, const ExprPtr&,
                  std::set<std::string>& scope) {
    check(n.tuple, scope);
    require(n.depth <= 1, "tuple_extract has extension depth > 1");
    require(n.index >= 1, "tuple component index below 1");
  }

  void check_node(const SeqExpr& n, const ExprPtr&,
                  std::set<std::string>& scope) {
    for (const ExprPtr& a : n.elems) check(a, scope);
    require(n.depth <= 1, "seq_cons has extension depth > 1");
    require(!n.elems.empty() || n.elem_type != nullptr,
            "empty sequence literal without an element type");
  }

  const Program& program_;
  std::string path_;
};

}  // namespace

void verify_vector_expression(const Program& program, const ExprPtr& expr,
                              const std::vector<std::string>& in_scope) {
  Verifier(program).expression(expr, in_scope);
}

void verify_vector_program(const Program& program) {
  Verifier v(program);
  for (const FunDef& f : program.functions) {
    v.function(f);
  }
}

}  // namespace proteus::xform
