// optimize.hpp — vector-level optimizations (Section 4.5).
//
// The paper: "Certain functions may have parameters that should not be
// extracted and inserted. Consider the function seq_index. If the source
// parameter is fixed relative to the surrounding iterators, there is no
// need to replicate it ... each set of index values would retrieve from
// their own copy of the source sequence, clearly a waste of time and
// space."
//
// Rule R2c replicates every frame variable through each nested iterator
// with dist^j. When such a replicated variable is used ONLY as a
// seq_index source, the replication is pure waste — and it is
// asymptotically significant: it is what makes flattened divide-and-
// conquer quadratic. This pass removes it:
//
//     let V = dist^j(v, ib) in ... seq_index^{j+1}(V, idx) ...
//  =>                        ... seq_index_inner^j(v, idx) ...
//
// where seq_index_inner(v, is) = [v[i] : i in is] gathers from the shared
// row (its depth-1 extension is one segmented gather). The rewrite fires
// only when every use of V is such a source and the dist then disappears.
#pragma once

#include "lang/ast.hpp"
#include "xform/build.hpp"

namespace proteus::xform {

/// Applies the shared-row rewrite throughout one expression.
[[nodiscard]] lang::ExprPtr optimize_shared_rows(const lang::ExprPtr& e);

/// Applies it to every function body.
[[nodiscard]] lang::Program optimize_shared_rows(
    const lang::Program& flattened);

/// Removes let bindings whose variable does not occur in the body (all
/// expressions of P/V are pure, so this is always sound). The
/// transformation rules bind witnesses and bounds eagerly; this pass
/// cleans up what they did not end up needing.
[[nodiscard]] lang::ExprPtr remove_dead_lets(const lang::ExprPtr& e);

[[nodiscard]] lang::Program remove_dead_lets(const lang::Program& program);

}  // namespace proteus::xform
