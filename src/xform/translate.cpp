#include "xform/translate.hpp"

#include <functional>
#include <utility>

#include "vl/check.hpp"

namespace proteus::xform {

using namespace lang;

namespace {

TypePtr strip_seq(const TypePtr& t, int k) {
  TypePtr cur = t;
  for (int i = 0; i < k; ++i) {
    PROTEUS_REQUIRE(TransformError, cur->is_seq(),
                    "T1: stripping a non-sequence type");
    cur = cur->elem();
  }
  return cur;
}

class Translate {
 public:
  explicit Translate(NameGen& names) : names_(names) {}

  ExprPtr rewrite(const ExprPtr& e) {
    if (e == nullptr) return nullptr;
    return std::visit(
        [&](const auto& node) { return rewrite_node(node, e); }, e->node);
  }

 private:
  std::vector<ExprPtr> rewrite_all(const std::vector<ExprPtr>& items) {
    std::vector<ExprPtr> out;
    out.reserve(items.size());
    for (const ExprPtr& it : items) out.push_back(rewrite(it));
    return out;
  }

  /// The T1 rule: reduce a depth-d node (d >= 2) to its depth-1 form.
  /// `build` constructs the depth-1 node from the adjusted arguments; its
  /// result type must be the depth-1 frame type.
  ExprPtr apply_t1(int depth, std::vector<ExprPtr> args,
                   const std::vector<std::uint8_t>& lifted,
                   const TypePtr& result_type,
                   const std::function<ExprPtr(std::vector<ExprPtr>)>& build) {
    const int d1 = depth - 1;
    // Bind the frame source (first lifted argument) so it can be used both
    // extracted and as the insert frame without duplicating work.
    int frame_idx = -1;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (lifted.empty() || lifted[i] != 0) {
        frame_idx = static_cast<int>(i);
        break;
      }
    }
    PROTEUS_REQUIRE(TransformError, frame_idx >= 0,
                    "T1: depth-extended call with no frame argument");
    std::string fname = names_.fresh("f");
    ExprPtr fsrc = args[static_cast<std::size_t>(frame_idx)];
    ExprPtr fvar = nb::var(fname, fsrc->type);
    args[static_cast<std::size_t>(frame_idx)] = fvar;

    std::vector<ExprPtr> flat_args;
    flat_args.reserve(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (lifted.empty() || lifted[i] != 0) {
        flat_args.push_back(nb::prim_d(Prim::kExtract, 0,
                                       {args[i], nb::int_lit(d1)}, {},
                                       strip_seq(args[i]->type, d1)));
      } else {
        flat_args.push_back(args[i]);
      }
    }
    ExprPtr inner = build(std::move(flat_args));
    ExprPtr restored = nb::prim_d(Prim::kInsert, 0,
                                  {inner, fvar, nb::int_lit(d1)}, {},
                                  result_type);
    return nb::let(fname, fsrc, restored);
  }

  template <typename T>
  ExprPtr rewrite_node(const T& node, const ExprPtr& e) {
    if constexpr (std::is_same_v<T, IntLit> || std::is_same_v<T, RealLit> ||
                  std::is_same_v<T, BoolLit> || std::is_same_v<T, VarRef>) {
      return e;
    } else if constexpr (std::is_same_v<T, Let>) {
      return make_expr(Let{node.var, rewrite(node.init), rewrite(node.body)},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, If>) {
      return make_expr(If{rewrite(node.cond), rewrite(node.then_expr),
                          rewrite(node.else_expr)},
                       e->type, e->loc);
    } else if constexpr (std::is_same_v<T, PrimCall>) {
      return rewrite_prim(node, e);
    } else if constexpr (std::is_same_v<T, FunCall>) {
      return rewrite_fun(node, e);
    } else if constexpr (std::is_same_v<T, IndirectCall>) {
      return rewrite_indirect(node, e);
    } else if constexpr (std::is_same_v<T, TupleExpr>) {
      return rewrite_tuple_cons(node, e);
    } else if constexpr (std::is_same_v<T, TupleGet>) {
      return rewrite_tuple_get(node, e);
    } else if constexpr (std::is_same_v<T, SeqExpr>) {
      return rewrite_seq_cons(node, e);
    } else {
      throw TransformError(
          "T1 expects flattened input (Iterator/Call/Lambda found)");
    }
  }

  ExprPtr rewrite_prim(const PrimCall& n, const ExprPtr& e) {
    std::vector<ExprPtr> args = rewrite_all(n.args);
    // empty_frame's depth field is a frame-depth marker, not a parallel
    // extension; any_true consumes whole frames at once.
    const bool exempt =
        n.op == Prim::kEmptyFrame || n.op == Prim::kAnyTrue;
    if (exempt || n.depth <= 1) {
      return make_expr(PrimCall{n.op, n.depth, std::move(args), n.lifted},
                       e->type, e->loc);
    }
    return apply_t1(n.depth, std::move(args), n.lifted, e->type,
                    [&](std::vector<ExprPtr> flat) {
                      return make_expr(
                          PrimCall{n.op, 1, std::move(flat), n.lifted},
                          Type::seq(strip_seq(e->type, n.depth)), e->loc);
                    });
  }

  ExprPtr rewrite_fun(const FunCall& n, const ExprPtr& e) {
    std::vector<ExprPtr> args = rewrite_all(n.args);
    if (n.depth == 0) {
      return make_expr(FunCall{n.name, 0, std::move(args), {}}, e->type,
                       e->loc);
    }
    const std::string ext = extension_name(n.name, 1);
    if (n.depth == 1) {
      return make_expr(FunCall{ext, 0, std::move(args), {}}, e->type, e->loc);
    }
    return apply_t1(n.depth, std::move(args), n.lifted, e->type,
                    [&](std::vector<ExprPtr> flat) {
                      return make_expr(
                          FunCall{ext, 0, std::move(flat), {}},
                          Type::seq(strip_seq(e->type, n.depth)), e->loc);
                    });
  }

  ExprPtr rewrite_indirect(const IndirectCall& n, const ExprPtr& e) {
    ExprPtr fn = rewrite(n.fn);
    std::vector<ExprPtr> args = rewrite_all(n.args);
    if (n.depth <= 1) {
      return make_expr(
          IndirectCall{std::move(fn), n.depth, std::move(args), n.lifted},
          e->type, e->loc);
    }
    return apply_t1(
        n.depth, std::move(args), n.lifted, e->type,
        [&](std::vector<ExprPtr> flat) {
          return make_expr(IndirectCall{fn, 1, std::move(flat), n.lifted},
                           Type::seq(strip_seq(e->type, n.depth)), e->loc);
        });
  }

  ExprPtr rewrite_tuple_cons(const TupleExpr& n, const ExprPtr& e) {
    std::vector<ExprPtr> elems = rewrite_all(n.elems);
    if (n.depth <= 1) {
      return make_expr(TupleExpr{std::move(elems), n.depth}, e->type, e->loc);
    }
    return apply_t1(n.depth, std::move(elems), {}, e->type,
                    [&](std::vector<ExprPtr> flat) {
                      return make_expr(
                          TupleExpr{std::move(flat), 1},
                          Type::seq(strip_seq(e->type, n.depth)), e->loc);
                    });
  }

  ExprPtr rewrite_tuple_get(const TupleGet& n, const ExprPtr& e) {
    ExprPtr tuple = rewrite(n.tuple);
    if (n.depth <= 1) {
      return make_expr(TupleGet{std::move(tuple), n.index, n.depth}, e->type,
                       e->loc);
    }
    std::vector<ExprPtr> args{std::move(tuple)};
    return apply_t1(n.depth, std::move(args), {}, e->type,
                    [&](std::vector<ExprPtr> flat) {
                      return make_expr(
                          TupleGet{flat[0], n.index, 1},
                          Type::seq(strip_seq(e->type, n.depth)), e->loc);
                    });
  }

  ExprPtr rewrite_seq_cons(const SeqExpr& n, const ExprPtr& e) {
    std::vector<ExprPtr> elems = rewrite_all(n.elems);
    if (n.depth <= 1) {
      return make_expr(SeqExpr{std::move(elems), n.elem_type, n.depth},
                       e->type, e->loc);
    }
    return apply_t1(
        n.depth, std::move(elems), {}, e->type,
        [&](std::vector<ExprPtr> flat) {
          return make_expr(SeqExpr{std::move(flat), n.elem_type, 1},
                           Type::seq(strip_seq(e->type, n.depth)), e->loc);
        });
  }

  NameGen& names_;
};

}  // namespace

ExprPtr translate(const ExprPtr& e, NameGen& names) {
  return Translate(names).rewrite(e);
}

Program translate(const Program& flattened, NameGen& names) {
  Program out;
  out.functions.reserve(flattened.functions.size());
  for (const FunDef& f : flattened.functions) {
    FunDef g = f;
    g.body = translate(f.body, names);
    out.functions.push_back(std::move(g));
  }
  return out;
}

}  // namespace proteus::xform
