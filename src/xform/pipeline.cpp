#include "xform/pipeline.hpp"

#include <utility>

#include "analysis/lifetime.hpp"
#include "analysis/shape.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "obs/tracer.hpp"
#include "rt/rt.hpp"
#include "xform/canon.hpp"
#include "xform/optimize.hpp"
#include "xform/translate.hpp"
#include "vm/compile.hpp"
#include "vm/fuse.hpp"
#include "vm/verify.hpp"

namespace proteus::xform {

using namespace lang;

namespace {

void attach_rules(obs::Span& span, const RuleCounts& rules) {
  for (const auto& [rule, count] : rules) span.counter(rule, count);
}

void merge_rules(RuleCounts& into, const RuleCounts& from) {
  for (const auto& [rule, count] : from) into[rule] += count;
}

}  // namespace

Compiled compile(std::string_view program_source,
                 std::string_view entry_source,
                 const PipelineOptions& options) {
  Compiled out;
  NameGen names;

  // The derivation trace rides on the span/event model: with no tracer
  // installed, collect_trace records into a pipeline-local one; with a
  // tracer installed (e.g. proteusc --trace-json), its event stream is
  // reused and only this compile's slice is rendered.
  obs::Tracer local_trace;
  const bool use_local_trace =
      options.collect_trace && obs::tracer() == nullptr;
  obs::MaybeTracerScope trace_scope(use_local_trace ? &local_trace
                                                    : nullptr);
  obs::Tracer* trace = obs::tracer();
  const std::size_t first_event =
      trace != nullptr ? trace->event_count() : 0;

  obs::Span whole("compile", "compile");

  Program parsed;
  {
    obs::Span span("compile", "parse");
    span.counter("source_bytes", program_source.size());
    parsed = parse_program(program_source);
  }

  {
    obs::Span span("compile", "check");
    out.checked = typecheck(parsed);
    if (!entry_source.empty()) {
      ExprPtr entry = parse_expression(entry_source);
      Program lifted;
      out.entry_checked = typecheck_expression(out.checked, entry, &lifted);
      // Lambdas lifted out of the entry expression join the program.
      for (FunDef& f : lifted.functions) {
        out.checked.functions.push_back(std::move(f));
      }
    }
    span.counter("functions", out.checked.functions.size());
  }

  ExprPtr entry_canonical;
  {
    obs::Span span("compile", "canonicalize[R1]");
    RuleCounts r1;
    out.canonical = canonicalize(out.checked, names, &r1);
    if (out.entry_checked != nullptr) {
      entry_canonical = canonicalize(out.entry_checked, names, &r1);
    }
    attach_rules(span, r1);
    merge_rules(out.rule_counts, r1);
  }

  {
    obs::Span span("compile", "flatten[R2]");
    if (out.entry_checked != nullptr) {
      FlattenedProgram flat;
      out.entry_flat = flatten_expression(out.canonical, entry_canonical,
                                          names, &flat, options.flatten);
      out.flat = std::move(flat.program);
      attach_rules(span, flat.rule_counts);
      merge_rules(out.rule_counts, flat.rule_counts);
    } else {
      FlattenedProgram flat = flatten(out.canonical, names, options.flatten);
      out.flat = std::move(flat.program);
      attach_rules(span, flat.rule_counts);
      merge_rules(out.rule_counts, flat.rule_counts);
    }
  }

  {
    obs::Span span("compile", "optimize");
    if (options.shared_row_gather) {
      out.flat = optimize_shared_rows(out.flat);
      if (out.entry_flat != nullptr) {
        out.entry_flat = optimize_shared_rows(out.entry_flat);
      }
    }
    out.flat = remove_dead_lets(out.flat);
    if (out.entry_flat != nullptr) {
      out.entry_flat = remove_dead_lets(out.entry_flat);
    }
  }

  {
    obs::Span span("compile", "translate[T1]");
    if (out.entry_flat != nullptr) {
      out.entry_vec = translate(out.entry_flat, names);
    }
    out.vec = translate(out.flat, names);
    span.counter("functions", out.vec.functions.size());
  }

  if (options.verify_output) {
    obs::Span span("compile", "analyze");
    out.analysis = analysis::analyze_program(out.vec);
    if (out.entry_vec != nullptr) {
      out.analysis.merge(analysis::analyze_expression(out.vec, out.entry_vec));
    }
    span.counter("diagnostics", out.analysis.size());
    if (!out.analysis.ok()) {
      throw analysis::AnalysisError(out.analysis);
    }
  }

  {
    obs::Span span("compile", "vm-assemble");
    std::shared_ptr<vm::Module> module =
        vm::compile_module(out.vec, out.entry_vec);
    // Attach the external calling convention: the *checked* (source-level)
    // parameter/result types of every user-visible function, plus the
    // entry expression's type. This is what a serialized module needs to
    // convert boxed P values at its boundary with no AST in the process
    // (vm/module_io.hpp). The `^d` extensions T1 manufactures are
    // internal-only and stay signature-less.
    module->signatures.resize(module->functions.size());
    for (std::size_t i = 0; i < module->functions.size(); ++i) {
      const lang::FunDef* def = out.checked.find(module->functions[i].name);
      if (def == nullptr || def->result == nullptr) continue;
      vm::Signature& sig = module->signatures[i];
      sig.present = true;
      sig.params.reserve(def->params.size());
      for (const lang::Param& p : def->params) sig.params.push_back(p.type);
      sig.result = def->result;
    }
    if (module->entry >= 0 && out.entry_checked != nullptr &&
        out.entry_checked->type != nullptr) {
      vm::Signature& sig =
          module->signatures[static_cast<std::size_t>(module->entry)];
      sig.present = true;
      sig.result = out.entry_checked->type;
    }
    out.module = module;
    out.module_o0 = out.module;
  }

  if (options.optimize_vcode) {
    obs::Span span("compile", "optimize-vcode");
    try {
      rt::maybe_fail_opt();  // deterministic fault injection (--inject=opt:N)
      out.module = vm::optimize_module(*out.module, &out.fusion);
    } catch (const rt::RuntimeTrap& trap) {
      // First rung of the degradation ladder: a resource trap (or an
      // injected fault) inside the optimizer is survivable — keep the
      // already-assembled -O0 module and record the downgrade.
      out.fusion = vm::FuseStats{};
      out.module = out.module_o0;
      out.compile_fallbacks.push_back(
          std::string("optimize-vcode trap: kept -O0 module: ") +
          trap.what());
      if (obs::Tracer* t = obs::tracer()) {
        t->instant("compile", "fallback.opt", trap.what());
      }
    }
    span.counter("fused_chains", out.fusion.fused_chains);
    span.counter("fused_prims", out.fusion.fused_prims);
    span.counter("eliminated_instrs", out.fusion.eliminated_instrs);
  }

  if (options.verify_vcode) {
    obs::Span span("compile", "verify-vcode");
    analysis::Report vcode = vm::verify_module(*out.module);
    span.counter("diagnostics", vcode.size());
    bool rejected = !vcode.ok();
    if (rejected && out.module != out.module_o0) {
      // The *optimized* module failed verification: distrust the
      // optimizer's output, fall back to -O0, and verify that instead.
      // Only an -O0 rejection is fatal.
      out.compile_fallbacks.push_back(
          "verify-vcode rejected optimized module: kept -O0 module");
      if (obs::Tracer* t = obs::tracer()) {
        t->instant("compile", "fallback.verify",
                   "optimized module rejected; reverting to -O0");
      }
      out.fusion = vm::FuseStats{};
      out.module = out.module_o0;
      vcode = vm::verify_module(*out.module);
      rejected = !vcode.ok();
    }
    out.analysis.merge(vcode);
    if (rejected) {
      throw analysis::AnalysisError(std::move(vcode));
    }
  }

  if (options.plan_memory) {
    obs::Span span("compile", "plan-memory");
    // Attach a memory plan to both modules (they may be the same object).
    // The const_pointer_cast is safe: the pipeline is the sole owner of
    // the freshly assembled modules at this point.
    const auto attach = [](std::shared_ptr<const vm::Module>& m)
        -> analysis::Report {
      analysis::PlanResult pr = analysis::plan_module(*m);
      std::const_pointer_cast<vm::Module>(m)->plan =
          std::make_shared<const analysis::MemoryPlan>(std::move(pr.plan));
      return std::move(pr.report);
    };
    out.memory_report = attach(out.module);
    if (out.module_o0 != out.module) {
      (void)attach(out.module_o0);  // -O1's findings are the reported set
    }
    span.counter("diagnostics", out.memory_report.size());
  }

  if (options.collect_trace && trace != nullptr) {
    out.derivation = trace->rule_lines(first_event);
  }
  return out;
}

}  // namespace proteus::xform
