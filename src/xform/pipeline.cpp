#include "xform/pipeline.hpp"

#include <utility>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "xform/canon.hpp"
#include "xform/optimize.hpp"
#include "xform/translate.hpp"
#include "vm/compile.hpp"
#include "xform/verify.hpp"

namespace proteus::xform {

using namespace lang;

Compiled compile(std::string_view program_source,
                 std::string_view entry_source,
                 const PipelineOptions& options) {
  Compiled out;
  NameGen names;

  Program parsed = parse_program(program_source);
  out.checked = typecheck(parsed);

  if (!entry_source.empty()) {
    ExprPtr entry = parse_expression(entry_source);
    Program lifted;
    out.entry_checked = typecheck_expression(out.checked, entry, &lifted);
    // Lambdas lifted out of the entry expression join the program.
    for (FunDef& f : lifted.functions) {
      out.checked.functions.push_back(std::move(f));
    }
  }

  out.canonical = canonicalize(out.checked, names);

  FlattenOptions flatten_options = options.flatten;
  if (options.collect_trace) flatten_options.trace_sink = &out.derivation;

  if (out.entry_checked != nullptr) {
    ExprPtr entry_canonical = canonicalize(out.entry_checked, names);
    FlattenedProgram flat;
    out.entry_flat = flatten_expression(out.canonical, entry_canonical, names,
                                        &flat, flatten_options);
    out.flat = std::move(flat.program);
    if (options.shared_row_gather) {
      out.flat = optimize_shared_rows(out.flat);
      out.entry_flat = optimize_shared_rows(out.entry_flat);
    }
    out.flat = remove_dead_lets(out.flat);
    out.entry_flat = remove_dead_lets(out.entry_flat);
    out.entry_vec = translate(out.entry_flat, names);
  } else {
    out.flat = flatten(out.canonical, names, flatten_options).program;
    if (options.shared_row_gather) {
      out.flat = optimize_shared_rows(out.flat);
    }
    out.flat = remove_dead_lets(out.flat);
  }

  out.vec = translate(out.flat, names);
  if (options.verify_output) {
    verify_vector_program(out.vec);
    if (out.entry_vec != nullptr) {
      verify_vector_expression(out.vec, out.entry_vec);
    }
  }
  out.module = vm::compile_module(out.vec, out.entry_vec);
  return out;
}

}  // namespace proteus::xform
