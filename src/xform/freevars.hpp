// freevars.hpp — free-variable analysis used by the transformation rules.
//
// Rule R2c dist's, and rule R2d restricts, exactly the iterator-bound
// variables that occur free in the subexpression at hand; this module
// computes those occurrence sets.
#pragma once

#include <set>
#include <string>

#include "lang/ast.hpp"

namespace proteus::xform {

/// Names of the variables occurring free in `e` (function names referenced
/// through resolved VarRef/FunCall nodes are excluded — they are global).
[[nodiscard]] std::set<std::string> free_vars(const lang::ExprPtr& e);

/// True when `name` occurs free in `e`.
[[nodiscard]] bool occurs_free(const lang::ExprPtr& e,
                               const std::string& name);

}  // namespace proteus::xform
