// build.hpp — typed-node construction helpers and fresh-name generation
// shared by the transformation passes. Every generated node carries its
// static type so downstream passes and engines never re-infer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "lang/typecheck.hpp"

namespace proteus::xform {

/// Rule-firing tallies of a transformation pass, keyed by rule name
/// ("R1", "R2a" ... "R2f", "hoist"). Attached as counters to the
/// compile-phase spans and surfaced through Compiled::rule_counts.
using RuleCounts = std::map<std::string, std::uint64_t>;

/// Source of fresh variable names. Generated names use the reserved "_t"
/// prefix (see README: user identifiers beginning with "_t" are reserved
/// for the transformation engine).
class NameGen {
 public:
  std::string fresh(const char* hint) {
    return std::string("_t") + std::to_string(++counter_) + "_" + hint;
  }

 private:
  int counter_ = 0;
};

namespace nb {  // node builders

using lang::Expr;
using lang::ExprPtr;
using lang::Prim;
using lang::TypePtr;

inline ExprPtr int_lit(vl::Int v) {
  return lang::make_expr(lang::IntLit{v}, lang::Type::int_());
}

inline ExprPtr var(const std::string& name, TypePtr type) {
  return lang::make_expr(lang::VarRef{name, false}, std::move(type));
}

inline ExprPtr let(const std::string& name, ExprPtr init, ExprPtr body) {
  TypePtr t = body->type;
  return lang::make_expr(lang::Let{name, std::move(init), std::move(body)},
                         std::move(t));
}

inline ExprPtr if_(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  TypePtr t = then_e->type;
  return lang::make_expr(
      lang::If{std::move(cond), std::move(then_e), std::move(else_e)},
      std::move(t));
}

/// Depth-0 primitive call with inferred result type.
inline ExprPtr prim(Prim op, std::vector<ExprPtr> args) {
  std::vector<TypePtr> arg_types;
  arg_types.reserve(args.size());
  for (const ExprPtr& a : args) arg_types.push_back(a->type);
  TypePtr t = lang::prim_result_type(op, arg_types);
  return lang::make_expr(lang::PrimCall{op, 0, std::move(args), {}},
                         std::move(t));
}

/// Depth-d primitive call with explicit result type and lift flags.
inline ExprPtr prim_d(Prim op, int depth, std::vector<ExprPtr> args,
                      std::vector<std::uint8_t> lifted, TypePtr result) {
  return lang::make_expr(
      lang::PrimCall{op, depth, std::move(args), std::move(lifted)},
      std::move(result));
}

inline ExprPtr fun_call(const std::string& name, int depth,
                        std::vector<ExprPtr> args,
                        std::vector<std::uint8_t> lifted, TypePtr result) {
  return lang::make_expr(
      lang::FunCall{name, depth, std::move(args), std::move(lifted)},
      std::move(result));
}

inline ExprPtr iterator(const std::string& var_name, ExprPtr domain,
                        ExprPtr body) {
  TypePtr t = lang::Type::seq(body->type);
  return lang::make_expr(
      lang::Iterator{var_name, std::move(domain), nullptr, std::move(body)},
      std::move(t));
}

}  // namespace nb

}  // namespace proteus::xform
